// RNN training (§7): Adam at lr 1e-3, minibatches of 10 users, loss
// averaged over all prediction/label pairs of the minibatch (masked to the
// last 21 days), gradient accumulation across users.
//
// Two execution strategies reproduce the §7.1 comparison:
//  * kPerUserThreads (default, the paper's "custom parallelism"): each
//    worker thread owns a full model replica, evaluates whole users
//    independently, and replica gradients are reduced into the master
//    between minibatches. No padding waste on long-tailed histories.
//  * kPaddedBatch (reference): users of a minibatch are stepped in
//    lockstep as [B x d] rows, padding every user to the longest history
//    in the batch.
//
// Also provides the tape-free scorer used for offline evaluation and by
// the serving simulator.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "train/rnn_network.hpp"
#include "train/sequence.hpp"

namespace pp::train {

enum class BatchStrategy { kPerUserThreads, kPaddedBatch, kSequential };

struct RnnTrainerConfig {
  int epochs = 1;
  double learning_rate = 1e-3;
  std::size_t minibatch_users = 10;
  /// Worker threads for kPerUserThreads (0 = hardware concurrency).
  std::size_t num_threads = 0;
  double grad_clip = 5.0;
  BatchStrategy strategy = BatchStrategy::kPerUserThreads;
  SequenceConfig sequence;
  /// Builds timeshift sequences (eq. 3) instead of session sequences.
  bool timeshift = false;
  std::uint64_t seed = 123;
};

/// Figure 4 series: cumulative sessions processed vs. minibatch loss.
struct TrainingCurve {
  std::vector<std::size_t> sessions_processed;
  std::vector<double> minibatch_loss;
  /// sessions_processed value at each epoch end (the vertical lines).
  std::vector<std::size_t> epoch_boundaries;
  double final_epoch_mean_loss = 0;
};

class RnnTrainer {
 public:
  /// `network` is the master model, updated in place.
  RnnTrainer(RnnNetwork& network, RnnTrainerConfig config);
  ~RnnTrainer();

  /// Trains on the given users of the dataset; returns the loss curve.
  TrainingCurve fit(const data::Dataset& dataset,
                    std::span<const std::size_t> user_indices);

  const RnnTrainerConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Scored predictions for evaluation, aligned with eval:: span inputs.
struct ScoredSeries {
  std::vector<double> scores;
  std::vector<float> labels;
  std::vector<std::int64_t> timestamps;

  void append(double score, float label, std::int64_t ts) {
    scores.push_back(score);
    labels.push_back(label);
    timestamps.push_back(ts);
  }
  void append_series(const ScoredSeries& other);
  /// Keeps only entries with from <= timestamp < to (to = 0 means open).
  ScoredSeries filter_time(std::int64_t from, std::int64_t to) const;
};

/// Tape-free scoring of every prediction of the given users; emits only
/// predictions with timestamp in [emit_from, emit_to) (emit_to = 0 keeps
/// all). Replays the lag-δ semantics exactly as in training.
ScoredSeries score_users(const RnnNetwork& network,
                         const data::Dataset& dataset,
                         std::span<const std::size_t> user_indices,
                         const SequenceConfig& sequence_config,
                         bool timeshift, std::int64_t emit_from = 0,
                         std::int64_t emit_to = 0,
                         std::size_t num_threads = 1);

}  // namespace pp::train
