#include "train/sequence.hpp"

#include <algorithm>

namespace pp::train {

std::size_t feature_width(const data::ContextSchema& schema,
                          FeatureMode mode) {
  switch (mode) {
    case FeatureMode::kFull:
      return schema.one_hot_width() + features::kTimeOfDayWidth;
    case FeatureMode::kTimeOnly:
      return features::kTimeOfDayWidth;
    case FeatureMode::kNone:
      return 0;
  }
  return 0;
}

double UserSequence::total_loss_weight() const {
  double total = 0;
  for (float w : loss_weights) total += w;
  return total;
}

void encode_step_features(const data::ContextSchema& schema, FeatureMode mode,
                          std::int64_t t,
                          std::span<const std::uint32_t> context,
                          std::span<float> out) {
  std::size_t offset = 0;
  if (mode == FeatureMode::kFull) {
    features::encode_context(schema, context, out);
    offset = schema.one_hot_width();
  }
  if (mode != FeatureMode::kNone) {
    features::encode_time_of_day(t, out.subspan(offset));
  }
}

namespace {

/// Sessions surviving truncation, as a span into the user's log.
std::span<const data::Session> kept_sessions(const data::UserLog& user,
                                             std::size_t truncate) {
  const std::size_t n = user.sessions.size();
  const std::size_t keep = truncate > 0 ? std::min(n, truncate) : n;
  return {user.sessions.data() + (n - keep), keep};
}

}  // namespace

UserSequence build_session_sequence(const data::Dataset& dataset,
                                    const data::UserLog& user,
                                    const SequenceConfig& config) {
  const auto sessions = kept_sessions(user, config.truncate_history);
  const std::size_t n = sessions.size();
  const std::size_t fw = feature_width(dataset.schema, config.feature_mode);
  const std::size_t tb = config.time_buckets;
  const features::LogBucketizer bucketizer(static_cast<int>(tb));
  const std::int64_t delta = dataset.delta();

  UserSequence seq;
  seq.update_inputs = tensor::Matrix(n, fw + tb + 1);
  seq.predict_inputs = tensor::Matrix(n, fw + tb);
  seq.h_index.resize(n);
  seq.labels.resize(n);
  seq.loss_weights.resize(n);
  seq.timestamps.resize(n);

  std::uint32_t k = 0;  // updates visible so far (two-pointer over delta)
  for (std::size_t i = 0; i < n; ++i) {
    const data::Session& s = sessions[i];

    // ---- update row i: [f_i ; T(Δt_i) ; A_i] ----
    auto update_row = seq.update_inputs.row(i);
    encode_step_features(dataset.schema, config.feature_mode, s.timestamp,
                    s.context, update_row);
    const std::int64_t dt =
        i == 0 ? 0 : s.timestamp - sessions[i - 1].timestamp;
    bucketizer.encode(dt, update_row.subspan(fw, tb));
    update_row[fw + tb] = static_cast<float>(s.access);

    // ---- prediction for session i ----
    while (k < i && sessions[k].timestamp <= s.timestamp - delta) ++k;
    // k now counts sessions with t_j <= t_i - delta (k <= i).
    seq.h_index[i] = k;
    auto predict_row = seq.predict_inputs.row(i);
    if (config.context_at_predict) {
      encode_step_features(dataset.schema, config.feature_mode, s.timestamp,
                      s.context, predict_row);
    }
    const std::int64_t gap =
        k == 0 ? 0 : s.timestamp - sessions[k - 1].timestamp;
    bucketizer.encode(gap, predict_row.subspan(fw, tb));

    seq.labels[i] = static_cast<float>(s.access);
    seq.loss_weights[i] = s.timestamp >= config.loss_from ? 1.0f : 0.0f;
    seq.timestamps[i] = s.timestamp;
  }
  return seq;
}

UserSequence build_timeshift_sequence(const data::Dataset& dataset,
                                      const data::UserLog& user,
                                      const SequenceConfig& config) {
  const auto sessions = kept_sessions(user, config.truncate_history);
  const std::size_t n = sessions.size();
  const std::size_t fw = feature_width(dataset.schema, config.feature_mode);
  const std::size_t tb = config.time_buckets;
  const features::LogBucketizer bucketizer(static_cast<int>(tb));
  const std::int64_t delta = dataset.delta();
  const int days = dataset.days();

  UserSequence seq;
  seq.update_inputs = tensor::Matrix(n, fw + tb + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const data::Session& s = sessions[i];
    auto update_row = seq.update_inputs.row(i);
    encode_step_features(dataset.schema, config.feature_mode, s.timestamp,
                    s.context, update_row);
    const std::int64_t dt =
        i == 0 ? 0 : s.timestamp - sessions[i - 1].timestamp;
    bucketizer.encode(dt, update_row.subspan(fw, tb));
    update_row[fw + tb] = static_cast<float>(s.access);
  }

  seq.predict_inputs = tensor::Matrix(static_cast<std::size_t>(days), fw + tb);
  std::uint32_t k = 0;
  std::size_t label_scan = 0;
  std::size_t emitted = 0;
  for (int d = 0; d < days; ++d) {
    const std::int64_t day_begin =
        dataset.start_time + static_cast<std::int64_t>(d) * 86400;
    const std::int64_t window_start = dataset.peak.start_on_day(day_begin);
    const std::int64_t window_end =
        day_begin + static_cast<std::int64_t>(dataset.peak.end_hour) * 3600;

    while (k < n && sessions[k].timestamp <= window_start - delta) ++k;
    auto predict_row = seq.predict_inputs.row(emitted);
    // Eq. 3: no context at prediction time; only T(start_d - t_k).
    const std::int64_t gap =
        k == 0 ? 0 : window_start - sessions[k - 1].timestamp;
    bucketizer.encode(gap, predict_row.subspan(fw, tb));

    while (label_scan < n && sessions[label_scan].timestamp < window_start) {
      ++label_scan;
    }
    float label = 0.0f;
    for (std::size_t j = label_scan; j < n; ++j) {
      if (sessions[j].timestamp >= window_end) break;
      if (sessions[j].access) {
        label = 1.0f;
        break;
      }
    }
    seq.h_index.push_back(k);
    seq.labels.push_back(label);
    seq.loss_weights.push_back(window_start >= config.loss_from ? 1.0f : 0.0f);
    seq.timestamps.push_back(window_start);
    ++emitted;
  }
  return seq;
}

}  // namespace pp::train
