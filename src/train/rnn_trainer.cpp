#include "train/rnn_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>

#include "autograd/ops.hpp"
#include "nn/optimizer.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/thread.hpp"
#include "util/thread_pool.hpp"

namespace pp::train {

using namespace autograd;

namespace {

/// Leaf [1 x cols] variable copied from row r of a matrix.
Variable row_input(const Matrix& m, std::size_t r) {
  Matrix row(1, m.cols());
  std::memcpy(row.data(), m.data() + r * m.cols(),
              m.cols() * sizeof(float));
  return Variable(std::move(row), /*requires_grad=*/false);
}

struct UserLossResult {
  Variable loss_sum;  // undefined when no weighted predictions exist
  double weight_sum = 0;
  double loss_value = 0;
  std::size_t sessions = 0;
};

/// Builds the BPTT graph for one user and returns the summed weighted BCE.
/// Updates are applied lazily: h_index is non-decreasing, so each update
/// enters the graph at most once, and trailing updates never needed by a
/// prediction are skipped.
UserLossResult user_forward(const RnnNetwork& network,
                            const UserSequence& seq, Rng& rng) {
  UserLossResult result;
  result.sessions = seq.num_updates();

  std::vector<nn::CellState> state = network.graph_initial_state();
  std::vector<Variable> exposed;
  exposed.reserve(seq.num_updates() + 1);
  exposed.push_back(state.back().front());

  const Matrix one(1, 1, 1.0f);
  std::uint32_t applied = 0;
  for (std::size_t p = 0; p < seq.num_predictions(); ++p) {
    const std::uint32_t k = seq.h_index[p];
    while (applied < k) {
      state = network.graph_update(state,
                                   row_input(seq.update_inputs, applied));
      exposed.push_back(state.back().front());
      ++applied;
    }
    if (seq.loss_weights[p] == 0.0f) continue;
    Variable logit = network.graph_predict_logit(
        exposed[k], row_input(seq.predict_inputs, p), rng);
    Matrix label(1, 1, seq.labels[p]);
    Matrix weight(1, 1, seq.loss_weights[p]);
    Variable term = bce_with_logits_sum(logit, label, weight);
    result.loss_sum =
        result.loss_sum.defined() ? add(result.loss_sum, term) : term;
    result.weight_sum += seq.loss_weights[p];
  }
  if (result.loss_sum.defined()) {
    result.loss_value = result.loss_sum.value()[0];
  }
  return result;
}

UserSequence build_sequence(const data::Dataset& dataset,
                            const data::UserLog& user,
                            const SequenceConfig& config, bool timeshift) {
  return timeshift ? build_timeshift_sequence(dataset, user, config)
                   : build_session_sequence(dataset, user, config);
}

}  // namespace

// ---------------------------------------------------------------- trainer

struct RnnTrainer::Impl {
  RnnNetwork& master;
  RnnTrainerConfig config;
  std::size_t threads;
  nn::Adam optimizer;
  std::vector<std::unique_ptr<RnnNetwork>> replicas;
  std::vector<Rng> replica_rngs;
  std::unique_ptr<ThreadPool> pool;
  Rng shuffle_rng;

  Impl(RnnNetwork& network, RnnTrainerConfig cfg)
      : master(network),
        config(cfg),
        threads(cfg.num_threads > 0
                    ? cfg.num_threads
                    : std::max<std::size_t>(
                          1, Thread::hardware_concurrency())),
        optimizer(network.parameters(), {.learning_rate = cfg.learning_rate}),
        shuffle_rng(cfg.seed) {
    if (config.strategy == BatchStrategy::kPerUserThreads) {
      Rng init_rng(cfg.seed ^ 0x5eedf00dull);
      for (std::size_t t = 0; t < threads; ++t) {
        replicas.push_back(
            std::make_unique<RnnNetwork>(master.config(), init_rng));
        replica_rngs.emplace_back(cfg.seed + 17 * (t + 1));
      }
      pool = std::make_unique<ThreadPool>(threads);
    } else {
      replica_rngs.emplace_back(cfg.seed + 17);
    }
  }

  /// One minibatch with per-user-thread parallelism (§7.1). Returns
  /// (mean loss, sessions processed).
  std::pair<double, std::size_t> minibatch_threaded(
      const data::Dataset& dataset, std::span<const std::size_t> users) {
    const std::size_t r_count = std::min(threads, users.size());
    std::vector<double> losses(r_count, 0), weights(r_count, 0);
    std::vector<std::size_t> sessions(r_count, 0);
    std::vector<std::future<void>> futures;
    for (std::size_t r = 0; r < r_count; ++r) {
      replicas[r]->copy_parameters_from(master);
      replicas[r]->zero_grad();
      replicas[r]->set_training(true);
      futures.push_back(pool->submit([&, r] {
        for (std::size_t i = r; i < users.size(); i += r_count) {
          const UserSequence seq = build_sequence(
              dataset, dataset.users[users[i]], config.sequence,
              config.timeshift);
          UserLossResult result =
              user_forward(*replicas[r], seq, replica_rngs[r]);
          if (result.loss_sum.defined()) {
            backward(result.loss_sum);
          }
          losses[r] += result.loss_value;
          weights[r] += result.weight_sum;
          sessions[r] += result.sessions;
        }
      }));
    }
    for (auto& f : futures) f.get();

    master.zero_grad();
    for (std::size_t r = 0; r < r_count; ++r) {
      replicas[r]->accumulate_grads_into(master);
    }
    const double total_weight =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    const double total_loss =
        std::accumulate(losses.begin(), losses.end(), 0.0);
    const std::size_t total_sessions =
        std::accumulate(sessions.begin(), sessions.end(), std::size_t{0});
    if (total_weight > 0) {
      apply_gradients(total_weight);
    }
    return {total_weight > 0 ? total_loss / total_weight : 0.0,
            total_sessions};
  }

  /// One minibatch on the master network, one user at a time.
  std::pair<double, std::size_t> minibatch_sequential(
      const data::Dataset& dataset, std::span<const std::size_t> users) {
    master.zero_grad();
    master.set_training(true);
    double total_loss = 0, total_weight = 0;
    std::size_t total_sessions = 0;
    for (const std::size_t u : users) {
      const UserSequence seq = build_sequence(dataset, dataset.users[u],
                                              config.sequence,
                                              config.timeshift);
      UserLossResult result = user_forward(master, seq, replica_rngs[0]);
      if (result.loss_sum.defined()) backward(result.loss_sum);
      total_loss += result.loss_value;
      total_weight += result.weight_sum;
      total_sessions += result.sessions;
    }
    if (total_weight > 0) apply_gradients(total_weight);
    return {total_weight > 0 ? total_loss / total_weight : 0.0,
            total_sessions};
  }

  /// Padded lockstep minibatch (§7.1 reference implementation): every user
  /// is stepped to the longest history in the batch; padded steps consume
  /// zero rows and feed no loss.
  std::pair<double, std::size_t> minibatch_padded(
      const data::Dataset& dataset, std::span<const std::size_t> users) {
    master.zero_grad();
    master.set_training(true);
    const std::size_t batch = users.size();
    std::vector<UserSequence> seqs;
    seqs.reserve(batch);
    std::size_t max_len = 0;
    std::size_t total_sessions = 0;
    for (const std::size_t u : users) {
      seqs.push_back(build_sequence(dataset, dataset.users[u],
                                    config.sequence, config.timeshift));
      max_len = std::max(max_len, seqs.back().num_updates());
      total_sessions += seqs.back().num_updates();
    }
    // Padded compute corresponds to batch * max_len step rows.
    const std::size_t width = master.config().update_input_size();

    // Step through all users in lockstep, caching exposed states.
    std::vector<nn::CellState> state;
    {
      state.reserve(master.config().num_layers);
      for (int l = 0; l < master.config().num_layers; ++l) {
        // Batched zero state.
        nn::CellState s;
        const std::size_t parts =
            master.config().cell == nn::CellType::kLstm ? 2 : 1;
        for (std::size_t part = 0; part < parts; ++part) {
          s.emplace_back(
              Matrix::zeros(batch, master.config().hidden_size));
        }
        state.push_back(std::move(s));
      }
    }
    std::vector<Variable> exposed;  // [B x H] per step, index 0 = h0
    exposed.reserve(max_len + 1);
    exposed.push_back(state.back().front());
    for (std::size_t step = 0; step < max_len; ++step) {
      Matrix x(batch, width);
      for (std::size_t b = 0; b < batch; ++b) {
        if (step < seqs[b].num_updates()) {
          std::memcpy(x.data() + b * width,
                      seqs[b].update_inputs.data() + step * width,
                      width * sizeof(float));
        }
      }
      state = master.graph_update(state, Variable(std::move(x)));
      exposed.push_back(state.back().front());
    }

    // Batched MLP head: predictions are grouped by the step depth k of
    // the hidden state they consume, and every group is scored as one
    // [n_k x d] graph_predict_logit batch — gather_rows pulls the group's
    // user rows out of exposed[k], and bce_with_logits_sum carries the
    // per-row labels/weights. One node chain per *step* instead of one
    // per prediction row, the same [B x d] batching the serving path uses.
    std::vector<std::vector<std::size_t>> group_rows(max_len + 1);
    std::vector<std::vector<std::size_t>> group_preds(max_len + 1);
    for (std::size_t b = 0; b < batch; ++b) {
      const UserSequence& seq = seqs[b];
      for (std::size_t p = 0; p < seq.num_predictions(); ++p) {
        if (seq.loss_weights[p] == 0.0f) continue;
        group_rows[seq.h_index[p]].push_back(b);
        group_preds[seq.h_index[p]].push_back(p);
      }
    }
    const std::size_t pred_cols = master.config().predict_input_size();
    Variable loss_sum;
    double total_weight = 0, loss_value = 0;
    for (std::size_t k = 0; k <= max_len; ++k) {
      const std::size_t n = group_rows[k].size();
      if (n == 0) continue;
      Matrix x(n, pred_cols);
      Matrix labels(n, 1);
      Matrix weights(n, 1);
      for (std::size_t r = 0; r < n; ++r) {
        const UserSequence& seq = seqs[group_rows[k][r]];
        const std::size_t p = group_preds[k][r];
        std::copy(seq.predict_inputs.row(p).begin(),
                  seq.predict_inputs.row(p).end(), x.row(r).begin());
        labels.at(r, 0) = seq.labels[p];
        weights.at(r, 0) = seq.loss_weights[p];
        total_weight += seq.loss_weights[p];
      }
      Variable h_block = gather_rows(exposed[k], std::move(group_rows[k]));
      Variable logits = master.graph_predict_logit(
          h_block, Variable(std::move(x)), replica_rngs[0]);
      Variable term = bce_with_logits_sum(logits, labels, weights);
      loss_sum = loss_sum.defined() ? add(loss_sum, term) : term;
    }
    if (loss_sum.defined()) {
      loss_value = loss_sum.value()[0];
      backward(loss_sum);
      apply_gradients(total_weight);
    }
    return {total_weight > 0 ? loss_value / total_weight : 0.0,
            total_sessions};
  }

  void apply_gradients(double total_weight) {
    const float inv = static_cast<float>(1.0 / total_weight);
    for (const auto& p : master.parameters()) {
      if (p.has_grad()) {
        const_cast<Variable&>(p).mutable_grad().scale_inplace(inv);
      }
    }
    if (config.grad_clip > 0) {
      nn::clip_grad_norm(master.parameters(), config.grad_clip);
    }
    optimizer.step();
  }
};

RnnTrainer::RnnTrainer(RnnNetwork& network, RnnTrainerConfig config)
    : impl_(std::make_unique<Impl>(network, config)) {}

RnnTrainer::~RnnTrainer() = default;

const RnnTrainerConfig& RnnTrainer::config() const { return impl_->config; }

void RnnTrainer::set_loss_from(std::int64_t loss_from) {
  impl_->config.sequence.loss_from = loss_from;
}

std::size_t RnnTrainer::optimizer_steps() const {
  return impl_->optimizer.step_count();
}

namespace {

void write_rng(BinaryWriter& writer, const Rng& rng) {
  const Rng::State s = rng.state();
  for (const std::uint64_t w : s.words) writer.write_u64(w);
  writer.write_f64(s.cached);
  writer.write_pod<std::uint8_t>(s.has_cached ? 1 : 0);
}

void read_rng(BinaryReader& reader, Rng& rng) {
  Rng::State s;
  for (auto& w : s.words) w = reader.read_u64();
  s.cached = reader.read_f64();
  s.has_cached = reader.read_pod<std::uint8_t>() != 0;
  rng.restore(s);
}

}  // namespace

void RnnTrainer::serialize_optimizer(BinaryWriter& writer) const {
  impl_->optimizer.serialize(writer);
  // The shuffle and per-replica dropout cursors are training state too: a
  // trainer restored without them re-draws minibatch orders from the seed,
  // so a resumed run would silently diverge from the uninterrupted one.
  write_rng(writer, impl_->shuffle_rng);
  writer.write_u64(impl_->replica_rngs.size());
  for (const Rng& rng : impl_->replica_rngs) write_rng(writer, rng);
}

void RnnTrainer::deserialize_optimizer(BinaryReader& reader) {
  impl_->optimizer.deserialize(reader);
  read_rng(reader, impl_->shuffle_rng);
  if (const std::uint64_t n = reader.read_u64();
      n != impl_->replica_rngs.size()) {
    throw std::runtime_error(
        "RnnTrainer: checkpoint carries " + std::to_string(n) +
        " replica RNG streams but this trainer has " +
        std::to_string(impl_->replica_rngs.size()) +
        " (strategy/thread-count mismatch)");
  }
  for (Rng& rng : impl_->replica_rngs) read_rng(reader, rng);
}

TrainingCurve RnnTrainer::fit(const data::Dataset& dataset,
                              std::span<const std::size_t> user_indices) {
  TrainingCurve curve;
  std::vector<std::size_t> order(user_indices.begin(), user_indices.end());
  std::size_t cumulative_sessions = 0;
  for (int epoch = 0; epoch < impl_->config.epochs; ++epoch) {
    impl_->shuffle_rng.shuffle(order);
    double epoch_loss = 0;
    std::size_t epoch_batches = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += impl_->config.minibatch_users) {
      const std::size_t end =
          std::min(begin + impl_->config.minibatch_users, order.size());
      const std::span<const std::size_t> batch(order.data() + begin,
                                               end - begin);
      std::pair<double, std::size_t> result;
      switch (impl_->config.strategy) {
        case BatchStrategy::kPerUserThreads:
          result = impl_->minibatch_threaded(dataset, batch);
          break;
        case BatchStrategy::kPaddedBatch:
          result = impl_->minibatch_padded(dataset, batch);
          break;
        case BatchStrategy::kSequential:
          result = impl_->minibatch_sequential(dataset, batch);
          break;
      }
      cumulative_sessions += result.second;
      curve.sessions_processed.push_back(cumulative_sessions);
      curve.minibatch_loss.push_back(result.first);
      epoch_loss += result.first;
      ++epoch_batches;
    }
    curve.epoch_boundaries.push_back(cumulative_sessions);
    curve.final_epoch_mean_loss =
        epoch_batches > 0 ? epoch_loss / static_cast<double>(epoch_batches)
                          : 0.0;
  }
  impl_->master.set_training(false);
  // The int8 serving replicas mirror the f32 weights just trained;
  // refresh an enabled quantized mode so it never scores stale.
  if (impl_->master.quantized_ready()) impl_->master.prepare_quantized();
  return curve;
}

// ---------------------------------------------------------------- scoring

namespace {

/// Shared tape-free replay scaffold of score_users / score_users_q8: the
/// per-user sequence walk with lazy update application, the
/// [emit_from, emit_to) emission filter, ~256-row flush blocks through the
/// batched RNNpredict head, optional per-user thread fan-out, and the
/// deterministic (user-order) series merge. `Path` supplies the numerics —
/// state representation, update step, hidden-snapshot gather, and the
/// batched head — so the f32 and int8 replays cannot drift apart in
/// emission semantics (the prequential gate compares their series 1:1).
template <typename Path>
ScoredSeries replay_users(const RnnNetwork& network,
                          const data::Dataset& dataset,
                          std::span<const std::size_t> user_indices,
                          const SequenceConfig& sequence_config,
                          bool timeshift, std::int64_t emit_from,
                          std::int64_t emit_to, std::size_t num_threads) {
  std::vector<ScoredSeries> partial(user_indices.size());
  auto score_one = [&](std::size_t i) {
    const UserSequence seq =
        build_sequence(dataset, dataset.users[user_indices[i]],
                       sequence_config, timeshift);
    Path path(network);
    std::uint32_t applied = 0;
    const std::size_t pred_cols = seq.predict_inputs.cols();
    constexpr std::size_t kBlock = 256;
    std::vector<float> x_buf, labels;
    std::vector<std::int64_t> stamps;
    auto flush = [&] {
      if (stamps.empty()) return;
      const std::size_t n = stamps.size();
      Matrix x_block(n, pred_cols, std::move(x_buf));
      const std::vector<double> logits = path.infer_block(n, x_block);
      for (std::size_t b = 0; b < n; ++b) {
        partial[i].append(pp::sigmoid(logits[b]), labels[b], stamps[b]);
      }
      x_buf.clear();
      labels.clear();
      stamps.clear();
    };
    for (std::size_t p = 0; p < seq.num_predictions(); ++p) {
      while (applied < seq.h_index[p]) {
        Matrix x(1, seq.update_inputs.cols());
        std::memcpy(x.data(),
                    seq.update_inputs.data() +
                        static_cast<std::size_t>(applied) *
                            seq.update_inputs.cols(),
                    seq.update_inputs.cols() * sizeof(float));
        path.update(x);
        ++applied;
      }
      const std::int64_t ts = seq.timestamps[p];
      if (ts < emit_from || (emit_to != 0 && ts >= emit_to)) continue;
      path.gather_hidden();
      const float* row = seq.predict_inputs.data() + p * pred_cols;
      x_buf.insert(x_buf.end(), row, row + pred_cols);
      labels.push_back(seq.labels[p]);
      stamps.push_back(ts);
      if (stamps.size() >= kBlock) flush();
    }
    flush();
  };
  if (num_threads > 1 && user_indices.size() > 1) {
    ThreadPool pool(num_threads);
    pool.parallel_for(user_indices.size(), score_one);
  } else {
    for (std::size_t i = 0; i < user_indices.size(); ++i) score_one(i);
  }
  ScoredSeries out;
  for (const auto& s : partial) out.append_series(s);
  return out;
}

/// f32 numerics: decoded hidden rows, f32 GRU update, batched
/// infer_logits head. Row b of a block equals the same row scored alone
/// (GEMM row independence), so blocking is bit-transparent.
struct F32ReplayPath {
  const RnnNetwork& network;
  InferenceState state;
  std::size_t hidden_cols;
  std::vector<float> h_buf;

  explicit F32ReplayPath(const RnnNetwork& net)
      : network(net),
        state(net.infer_initial_state()),
        hidden_cols(net.config().hidden_size) {}

  void update(const Matrix& x) { network.infer_update(state, x); }
  void gather_hidden() {
    const float* hidden = state.hidden().data();
    h_buf.insert(h_buf.end(), hidden, hidden + hidden_cols);
  }
  std::vector<double> infer_block(std::size_t n, const Matrix& x_block) {
    Matrix h_block(n, hidden_cols, std::move(h_buf));
    h_buf.clear();
    return network.infer_logits(h_block, x_block);
  }
};

/// Int8 numerics: the gathered hidden snapshots are the stored bytes
/// themselves (per-row scales), the update is the quantized GRU step, and
/// the head runs on the int8 kernels — exactly what the kInt8 serving
/// mode produces, block-size independent thanks to per-row quantization.
struct Q8ReplayPath {
  const RnnNetwork& network;
  QuantizedInferenceState state;
  std::size_t hidden_cols;
  std::vector<std::int8_t> h_bytes;
  std::vector<float> h_scales;

  explicit Q8ReplayPath(const RnnNetwork& net)
      : network(net),
        state(net.infer_initial_state_q8()),
        hidden_cols(net.config().hidden_size) {}

  void update(const Matrix& x) { network.infer_update_q8(state, x); }
  void gather_hidden() {
    const tensor::QuantizedMatrix& hidden = state.hidden();
    h_bytes.insert(h_bytes.end(), hidden.data(),
                   hidden.data() + hidden_cols);
    h_scales.push_back(hidden.scale());
  }
  std::vector<double> infer_block(std::size_t n, const Matrix& x_block) {
    tensor::QuantizedMatrix h_block(n, hidden_cols);
    for (std::size_t b = 0; b < n; ++b) {
      std::memcpy(h_block.row_data(b), h_bytes.data() + b * hidden_cols,
                  hidden_cols);
      h_block.set_row_scale(b, h_scales[b]);
    }
    h_bytes.clear();
    h_scales.clear();
    return network.infer_logits_q8(h_block, x_block);
  }
};

}  // namespace

ScoredSeries score_users(const RnnNetwork& network,
                         const data::Dataset& dataset,
                         std::span<const std::size_t> user_indices,
                         const SequenceConfig& sequence_config,
                         bool timeshift, std::int64_t emit_from,
                         std::int64_t emit_to, std::size_t num_threads) {
  return replay_users<F32ReplayPath>(network, dataset, user_indices,
                                     sequence_config, timeshift, emit_from,
                                     emit_to, num_threads);
}

ScoredSeries score_users_q8(const RnnNetwork& network,
                            const data::Dataset& dataset,
                            std::span<const std::size_t> user_indices,
                            const SequenceConfig& sequence_config,
                            bool timeshift, std::int64_t emit_from,
                            std::int64_t emit_to, std::size_t num_threads) {
  if (!network.quantized_ready()) {
    throw std::logic_error(
        "score_users_q8: call prepare_quantized() on the network first");
  }
  return replay_users<Q8ReplayPath>(network, dataset, user_indices,
                                    sequence_config, timeshift, emit_from,
                                    emit_to, num_threads);
}

void ScoredSeries::append_series(const ScoredSeries& other) {
  scores.insert(scores.end(), other.scores.begin(), other.scores.end());
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
  timestamps.insert(timestamps.end(), other.timestamps.begin(),
                    other.timestamps.end());
}

ScoredSeries ScoredSeries::filter_time(std::int64_t from,
                                       std::int64_t to) const {
  ScoredSeries out;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (timestamps[i] >= from && (to == 0 || timestamps[i] < to)) {
      out.append(scores[i], labels[i], timestamps[i]);
    }
  }
  return out;
}

}  // namespace pp::train
