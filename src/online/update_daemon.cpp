#include "online/update_daemon.hpp"

#include <stdexcept>

namespace pp::online {

OnlineUpdateDaemon::OnlineUpdateDaemon(OnlineLearner& learner,
                                       OnlineUpdateDaemonConfig config)
    : learner_(&learner), config_(config) {
  if (config_.poll_interval.count() <= 0) {
    throw std::invalid_argument("OnlineUpdateDaemon: poll_interval must be "
                                "positive");
  }
  if (config_.min_round_interval.count() < 0) {
    throw std::invalid_argument("OnlineUpdateDaemon: negative "
                                "min_round_interval");
  }
  if (config_.checkpoint_every_rounds > 0 && config_.checkpoint_path.empty()) {
    throw std::invalid_argument("OnlineUpdateDaemon: checkpoint cadence set "
                                "without a checkpoint_path");
  }
}

OnlineUpdateDaemon::~OnlineUpdateDaemon() { stop(); }

void OnlineUpdateDaemon::start() {
  if (!try_start()) {
    throw std::logic_error("OnlineUpdateDaemon: already running");
  }
}

bool OnlineUpdateDaemon::try_start() {
  MutexLock lifecycle(lifecycle_mutex_);
  MutexLock lock(mutex_);
  if (running_) return false;
  stop_requested_ = false;
  running_ = true;
  thread_ = Thread(&OnlineUpdateDaemon::thread_main, this);
  return true;
}

void OnlineUpdateDaemon::stop() {
  // The lifecycle mutex covers the join too: a concurrent start() cannot
  // clear stop_requested_ while the old thread is still winding down.
  MutexLock lifecycle(lifecycle_mutex_);
  Thread to_join;
  {
    MutexLock lock(mutex_);
    if (!running_ && !thread_.joinable()) return;
    stop_requested_ = true;
    running_ = false;  // drive_round() callers fail fast from here on
    // Tombstone every pending ticket: its caller throws (even if a
    // start() races in before it wakes — the tombstone outlives the
    // restart), and the next daemon thread skips it rather than running
    // rounds nobody will collect. An in-flight ticket is exempt: its
    // round completes and its report is still delivered.
    drive_abandoned_ = drive_requested_;
    to_join = std::move(thread_);
    cv_.notify_all();
    drive_cv_.notify_all();
  }
  if (to_join.joinable()) to_join.join();
}

bool OnlineUpdateDaemon::running() const {
  MutexLock lock(mutex_);
  return running_;
}

OnlineUpdateReport OnlineUpdateDaemon::drive_round() {
  MutexLock lock(mutex_);
  if (!running_) {
    throw std::logic_error("OnlineUpdateDaemon: drive_round on a stopped "
                           "daemon");
  }
  const std::uint64_t ticket = ++drive_requested_;
  cv_.notify_all();
  // Keep waiting through a concurrent stop() while this ticket's round is
  // in flight: the daemon thread always finishes and parks the report, so
  // throwing here would tell the caller a round failed that actually ran
  // (and may have published). Never-started tickets are abandoned — the
  // tombstone check (not `!running_`) makes that stick even when a
  // racing start() flips running_ back on before this caller wakes.
  for (;;) {
    if (drive_reports_.count(ticket) != 0) break;
    if (drive_executing_ != ticket &&
        (ticket <= drive_abandoned_ || !running_)) {
      break;
    }
    drive_cv_.wait(mutex_);
  }
  const auto it = drive_reports_.find(ticket);
  if (it == drive_reports_.end()) {
    throw std::logic_error("OnlineUpdateDaemon: stopped before the driven "
                           "round started");
  }
  const OnlineUpdateReport report = it->second;
  drive_reports_.erase(it);
  return report;
}

OnlineUpdateDaemonStats OnlineUpdateDaemon::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void OnlineUpdateDaemon::note_round_start() {
  last_round_start_ = std::chrono::steady_clock::now();
  any_round_ = true;
  // The observed count is sampled at round start: sessions that arrive
  // while the round trains count toward the *next* trigger window. Read
  // from the buffer directly — its own short lock — never through
  // learner_->stats(), whose mutex an in-flight round holds for the whole
  // fit (we hold the daemon mutex here, so that wait would stall every
  // daemon API for the round's duration).
  observed_at_last_round_ = learner_->buffer().stats().observed;
  ++stats_.rounds_driven;
}

OnlineUpdateDaemon::RoundOutcome OnlineUpdateDaemon::run_round_outside_lock() {
  RoundOutcome outcome;
  try {
    outcome.report = learner_->run_update_round();
  } catch (const std::exception&) {
    // A throwing learner must not terminate() the daemon thread (and with
    // it the serving process); the failure lands in the stats ledger and
    // the round reports ran == false.
    outcome.round_error = true;
  }

  if (outcome.report.ran) ++rounds_since_checkpoint_;
  if (config_.checkpoint_every_rounds > 0 &&
      rounds_since_checkpoint_ >= config_.checkpoint_every_rounds) {
    try {
      learner_->save_checkpoint(config_.checkpoint_path);
      rounds_since_checkpoint_ = 0;
      outcome.wrote_checkpoint = true;
    } catch (const std::exception&) {
      // An unwritable checkpoint must not kill the update loop; the
      // failure is surfaced through the stats ledger instead.
      outcome.checkpoint_failed = true;
    }
  }
  return outcome;
}

void OnlineUpdateDaemon::commit_round(const RoundOutcome& outcome) {
  if (outcome.report.ran) ++stats_.rounds_ran;
  if (outcome.round_error) ++stats_.round_errors;
  if (outcome.report.published) ++stats_.publishes;
  if (outcome.report.rolled_back) ++stats_.rollbacks;
  if (outcome.wrote_checkpoint) ++stats_.checkpoints;
  if (outcome.checkpoint_failed) ++stats_.checkpoint_failures;
}

void OnlineUpdateDaemon::thread_main() {
  MutexLock lock(mutex_);
  while (true) {
    // Poll-interval wait, woken early by stop() or a drive ticket. The
    // loop is explicit (not a predicate overload) so every read of the
    // guarded flags happens where the analysis can see the lock held.
    const auto deadline =
        std::chrono::steady_clock::now() + config_.poll_interval;
    while (!stop_requested_ && drive_completed_ >= drive_requested_) {
      if (cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) break;
    }
    if (stop_requested_) break;
    ++stats_.wakeups;

    if (drive_completed_ < drive_requested_) {
      // Serve exactly one ticket per iteration (stop is re-checked between
      // tickets). The round runs with the daemon mutex released;
      // drive_executing_ keeps this ticket's caller waiting through a
      // concurrent stop().
      const std::uint64_t ticket = drive_completed_ + 1;
      if (ticket <= drive_abandoned_) {
        // Orphaned by a stop() before it ever started: its caller throws
        // (or already threw) — don't run a round nobody will collect.
        drive_completed_ = ticket;
        drive_cv_.notify_all();
        continue;
      }
      drive_executing_ = ticket;
      note_round_start();
      lock.unlock();
      const RoundOutcome outcome = run_round_outside_lock();
      lock.lock();
      commit_round(outcome);
      drive_completed_ = ticket;
      drive_executing_ = 0;
      drive_reports_[ticket] = outcome.report;
      drive_cv_.notify_all();
      continue;
    }

    // Auto trigger: both the wall-clock floor and the new-session floor
    // must hold. The observed counter is read straight off the buffer
    // (one short buffer lock) — learner_->stats() would block on the
    // learner's round mutex whenever another thread holds it.
    const auto now = std::chrono::steady_clock::now();
    const bool interval_ok =
        !any_round_ || now - last_round_start_ >= config_.min_round_interval;
    const std::size_t observed = learner_->buffer().stats().observed;
    const bool sessions_ok =
        observed - observed_at_last_round_ >= config_.min_new_sessions;
    if (interval_ok && sessions_ok) {
      note_round_start();
      lock.unlock();
      const RoundOutcome outcome = run_round_outside_lock();
      lock.lock();
      commit_round(outcome);
    } else if (sessions_ok) {
      ++stats_.deferred_interval;
    } else if (interval_ok) {
      ++stats_.deferred_sessions;
    }
  }
  // Unfulfillable drive tickets (requested but not completed) wake their
  // callers, who observe running_ == false and throw.
  drive_cv_.notify_all();
}

}  // namespace pp::online
