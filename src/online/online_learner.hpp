// OnlineLearner — the control loop that closes serve→learn→serve (§10
// "reusable models", Figure 7's warmup curve bent upward):
//
//   serving joiner ──observe──▶ SessionReplayBuffer
//        ▲                            │ snapshot (train < holdout,
//        │                            │           eval = holdout window)
//   ModelRegistry ◀──gated publish── shadow RnnNetwork + RnnTrainer
//                                     (Adam state persists across rounds)
//
// Each update round trains the private shadow network for a few epochs
// over the buffered sessions *older* than the most recent holdout window,
// then gates: candidate and currently-published model both score the
// held-out window prequentially (they were trained only on data before
// it), and the candidate is published only when its PR-AUC does not
// regress beyond a configurable delta. There is no other publish path —
// every publish is gate-approved by construction, and the stats make that
// auditable (publishes + rejects + skipped == rounds).
#pragma once

#include <memory>
#include <string>

#include "online/model_registry.hpp"
#include "online/replay_buffer.hpp"
#include "serving/stream.hpp"
#include "train/rnn_trainer.hpp"
#include "util/mutex.hpp"

namespace pp::obs {
class Counter;
class Gauge;
class LatencyHistogram;
}  // namespace pp::obs

namespace pp::online {

struct OnlineLearnerConfig {
  ReplayBufferConfig buffer;

  /// Cohort label on this learner's metrics (round latency, gate counters,
  /// buffer occupancy). Observability only — no training behavior depends
  /// on it.
  std::string cohort = "default";

  // ---- incremental fit schedule (one round) ----
  int epochs_per_round = 1;
  double learning_rate = 1e-3;
  std::size_t minibatch_users = 10;
  double grad_clip = 5.0;
  std::uint64_t seed = 123;
  /// Restrict the training loss to the last N seconds before the holdout
  /// (0 = every buffered prediction carries loss).
  std::int64_t loss_window = 0;

  // ---- prequential gate ----
  /// Event-time width of the held-out window (the most recent buffered
  /// span): excluded from training, scored by the gate.
  std::int64_t holdout_window = 86400;
  /// Publish iff candidate PR-AUC >= published PR-AUC - max_regression.
  double max_pr_auc_regression = 0.01;
  /// Gate on the int8 serving numerics (score_users_q8) instead of f32 —
  /// what a kInt8 serving tier will actually run.
  bool gate_int8 = false;
  /// Rounds are skipped (no train, no publish) below these floors.
  std::size_t min_train_sessions = 100;
  std::size_t min_holdout_predictions = 20;
  /// On a reject, additionally roll the registry back when the *current*
  /// version also regresses beyond the delta against the previous
  /// retained version on the same holdout (drift bad enough that the last
  /// publish is now hurting).
  bool rollback_on_regression = false;
};

struct OnlineUpdateReport {
  /// False when the round was skipped (not enough buffered data or an
  /// ungateable single-class holdout); nothing was trained or published.
  bool ran = false;
  bool published = false;
  bool rolled_back = false;
  double candidate_pr_auc = 0;
  double published_pr_auc = 0;
  std::size_t train_sessions = 0;
  std::size_t holdout_predictions = 0;
  /// Registry version after the round.
  std::uint64_t version = 0;
};

struct OnlineLearnerStats {
  std::size_t observed_sessions = 0;
  std::size_t rounds = 0;
  std::size_t skipped = 0;
  std::size_t publishes = 0;
  std::size_t rejects = 0;
  std::size_t rollbacks = 0;
};

class OnlineLearner {
 public:
  /// `dataset_meta` supplies the schema/timing constants for replay
  /// snapshots (users are ignored); the shadow network's architecture and
  /// sequence semantics come from the registry's current version.
  OnlineLearner(ModelRegistry& registry, const data::Dataset& dataset_meta,
                OnlineLearnerConfig config);
  ~OnlineLearner();

  /// Capture path — wire as the PrecomputeService completion listener.
  /// Thread-safe against a concurrent run_update_round().
  void observe(const serving::JoinedSession& joined);

  /// One incremental round: fit the shadow on the buffer minus the
  /// holdout, gate on the holdout, publish/reject (+optional rollback).
  /// Serialized internally; call from one control thread at a time.
  OnlineUpdateReport run_update_round();

  const SessionReplayBuffer& buffer() const { return buffer_; }
  OnlineLearnerStats stats() const;
  const ModelRegistry& registry() const { return *registry_; }

  /// Persists / restores the learner's training state (shadow weights +
  /// Adam moments + step count) so incremental training survives a
  /// restart. The buffer is not included (replay it from the stream).
  void save_state(BinaryWriter& writer) const;
  void load_state(BinaryReader& reader);

  /// File-backed checkpoint of save_state/load_state with a versioned
  /// header, written atomically (tmp file + rename) so a process killed
  /// mid-write never leaves a torn checkpoint behind. The
  /// OnlineUpdateDaemon calls save_checkpoint on its cadence;
  /// load_checkpoint returns false when no checkpoint exists yet (fresh
  /// start) and throws on a corrupt or mismatched file.
  void save_checkpoint(const std::string& path) const;
  bool load_checkpoint(const std::string& path);

 private:
  double gate_pr_auc(const models::RnnModel& model,
                     const data::Dataset& eval_ds,
                     std::span<const std::size_t> users,
                     std::int64_t emit_from, std::size_t* predictions) const;

  OnlineLearnerConfig config_;
  ModelRegistry* registry_;
  data::Dataset meta_;  // schema + timing constants only, users empty
  SessionReplayBuffer buffer_;
  // Observe-only instruments (process-global registry, resolved once in
  // the constructor, labeled cohort=config.cohort).
  obs::LatencyHistogram* obs_round_ns_ = nullptr;
  obs::Counter* obs_gate_publish_ = nullptr;
  obs::Counter* obs_gate_reject_ = nullptr;
  obs::Counter* obs_gate_skip_ = nullptr;
  obs::Gauge* obs_buffer_sessions_ = nullptr;

  mutable Mutex mutex_;
  /// Private trainable copy of the published model; never served.
  std::unique_ptr<models::RnnModel> shadow_ PP_GUARDED_BY(mutex_);
  /// Persistent trainer: Adam moments and step count survive rounds.
  std::unique_ptr<train::RnnTrainer> trainer_ PP_GUARDED_BY(mutex_);
  OnlineLearnerStats stats_ PP_GUARDED_BY(mutex_);
};

}  // namespace pp::online
