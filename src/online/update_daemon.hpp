// OnlineUpdateDaemon — the asynchronous half of the serve→learn→serve
// loop. PR 4's OnlineLearner runs every run_update_round() on whichever
// thread calls it; under production traffic that thread is a serving
// caller, and a multi-epoch fit on the serving path is exactly the stall
// the §10 architecture exists to avoid. The daemon owns one dedicated
// background thread and is the only caller of run_update_round(), so no
// round ever executes on a serving thread:
//
//   serving threads ──observe()──▶ SessionReplayBuffer
//                                        │ (observed count)
//        daemon thread ── poll ── trigger check ── run_update_round()
//                                        │               │
//                  checkpoint cadence ◀──┘        ModelRegistry publish
//
// Rounds are rate-limited by two triggers that must BOTH hold:
//  * min_round_interval — wall-clock floor between round starts, so a
//    slow fit cannot queue up back-to-back retrains, and
//  * min_new_sessions — the buffer must have observed at least this many
//    new sessions since the last round, so an idle cohort never burns CPU
//    refitting on identical data.
// drive_round() lets a control plane (tests, deterministic replays) force
// a round immediately — it still executes on the daemon thread; the
// caller just blocks for the report. Round-origin accounting is the
// daemon's stats ledger: every learner round this daemon drives increments
// rounds_driven, so `learner.stats().rounds == daemon.stats().rounds_driven`
// proves zero caller-thread rounds ever happened.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "online/online_learner.hpp"
#include "util/mutex.hpp"
#include "util/thread.hpp"

namespace pp::online {

struct OnlineUpdateDaemonConfig {
  /// Wall-clock floor between two round *starts* (rate limit).
  std::chrono::milliseconds min_round_interval{1000};
  /// Observed-session delta (vs the last round) required to trigger.
  std::size_t min_new_sessions = 1;
  /// How often the daemon wakes to evaluate the triggers.
  std::chrono::milliseconds poll_interval{20};
  /// Save the learner state to checkpoint_path after every N rounds that
  /// actually ran (report.ran); 0 disables checkpointing.
  std::size_t checkpoint_every_rounds = 0;
  std::string checkpoint_path;
};

struct OnlineUpdateDaemonStats {
  /// Trigger evaluations (poll wakeups + drive requests).
  std::size_t wakeups = 0;
  /// run_update_round() calls made from the daemon thread — the
  /// round-origin ledger. Equal to the learner's rounds counter iff no
  /// other thread ever drove a round.
  std::size_t rounds_driven = 0;
  /// Rounds whose report.ran was true (trained + gated).
  std::size_t rounds_ran = 0;
  /// Rounds that threw out of run_update_round (caught — an exploding
  /// learner must not take down the serving process; the round reports
  /// ran == false).
  std::size_t round_errors = 0;
  std::size_t publishes = 0;
  std::size_t rollbacks = 0;
  /// Wakeups where the session trigger held but the interval floor didn't.
  std::size_t deferred_interval = 0;
  /// Wakeups where the interval floor held but too few new sessions.
  std::size_t deferred_sessions = 0;
  std::size_t checkpoints = 0;
  std::size_t checkpoint_failures = 0;
};

/// Owns the background update thread for one OnlineLearner. Thread-safe;
/// start()/stop() may be cycled, stop() (and the destructor) joins the
/// thread after the in-flight round, if any, completes — never mid-round.
class OnlineUpdateDaemon {
 public:
  OnlineUpdateDaemon(OnlineLearner& learner, OnlineUpdateDaemonConfig config);
  /// Stops and joins; a round in flight finishes first.
  ~OnlineUpdateDaemon();

  OnlineUpdateDaemon(const OnlineUpdateDaemon&) = delete;
  OnlineUpdateDaemon& operator=(const OnlineUpdateDaemon&) = delete;

  /// Spawns the background thread. Throws std::logic_error if already
  /// running.
  void start();
  /// Atomic check-and-start: returns false (doing nothing) when already
  /// running. The race-free form of `if (!running()) start()`.
  bool try_start();
  /// Requests shutdown and joins the thread. Idempotent; pending
  /// drive_round() callers are woken with an error.
  void stop();
  bool running() const;

  /// Forces one round *on the daemon thread*, bypassing both triggers,
  /// and blocks until it completes; returns that round's report. The
  /// round still counts against the rate-limit window of subsequent
  /// auto-triggered rounds. Throws std::logic_error when the daemon is
  /// not running (or stops while waiting). Multiple concurrent callers
  /// each get their own round, executed in request order.
  OnlineUpdateReport drive_round();

  OnlineUpdateDaemonStats stats() const;
  const OnlineLearner& learner() const { return *learner_; }

 private:
  /// Everything one round produced while the daemon mutex was released;
  /// commit_round() folds it into the stats ledger once the lock is back.
  struct RoundOutcome {
    OnlineUpdateReport report;
    bool round_error = false;
    bool wrote_checkpoint = false;
    bool checkpoint_failed = false;
  };

  void thread_main() PP_EXCLUDES(mutex_);
  /// Stamps the rate-limit window and the round-origin ledger at round
  /// start — the part that must happen before the mutex is released, so a
  /// concurrent stats() reader never sees a round in flight uncounted.
  void note_round_start() PP_REQUIRES(mutex_);
  /// The round body: learner round + checkpoint cadence. Runs with the
  /// daemon mutex released (the fit can take seconds; every daemon API
  /// would stall behind it otherwise) — it must touch nothing guarded.
  RoundOutcome run_round_outside_lock() PP_EXCLUDES(mutex_);
  /// Folds one outcome into stats_ after the mutex is re-acquired.
  void commit_round(const RoundOutcome& outcome) PP_REQUIRES(mutex_);

  OnlineLearner* learner_;
  OnlineUpdateDaemonConfig config_;

  /// Serializes start()/stop() end to end (including the out-of-lock
  /// join): without it a start() racing a stop() could clear
  /// stop_requested_ before the old thread observed it, leaving two
  /// daemon threads alive. Never held by the daemon thread itself, and
  /// always acquired before mutex_ (the beta analysis checks the order).
  Mutex lifecycle_mutex_ PP_ACQUIRED_BEFORE(mutex_);
  mutable Mutex mutex_;
  CondVar cv_;        // wakes the daemon thread
  CondVar drive_cv_;  // wakes drive_round() waiters
  Thread thread_ PP_GUARDED_BY(mutex_);
  bool running_ PP_GUARDED_BY(mutex_) = false;
  bool stop_requested_ PP_GUARDED_BY(mutex_) = false;
  /// drive_round tickets: callers take the next request number; the
  /// daemon completes them in order and parks each report until its
  /// caller collects it. drive_executing_ marks the ticket whose round is
  /// currently in flight: its caller keeps waiting across a concurrent
  /// stop() (the round finishes and its report is delivered).
  /// drive_abandoned_ tombstones every ticket pending at a stop(): their
  /// callers throw (even if a start() races in before they wake), and a
  /// restarted daemon skips them instead of running rounds nobody wants.
  std::uint64_t drive_requested_ PP_GUARDED_BY(mutex_) = 0;
  std::uint64_t drive_completed_ PP_GUARDED_BY(mutex_) = 0;
  std::uint64_t drive_executing_ PP_GUARDED_BY(mutex_) = 0;  // 0 = none
  std::uint64_t drive_abandoned_ PP_GUARDED_BY(mutex_) = 0;  // never run
  std::unordered_map<std::uint64_t, OnlineUpdateReport> drive_reports_
      PP_GUARDED_BY(mutex_);

  /// Rate-limit window, stamped by note_round_start() under mutex_ (so
  /// stats readers and the trigger check agree on it).
  std::chrono::steady_clock::time_point last_round_start_
      PP_GUARDED_BY(mutex_){};
  bool any_round_ PP_GUARDED_BY(mutex_) = false;
  std::size_t observed_at_last_round_ PP_GUARDED_BY(mutex_) = 0;
  /// Checkpoint cadence counter. Daemon-thread-only by construction (only
  /// run_round_outside_lock touches it, and exactly one daemon thread
  /// exists at a time — the lifecycle mutex enforces that), so it is
  /// deliberately not mutex_-guarded: the round body runs unlocked.
  std::size_t rounds_since_checkpoint_ = 0;

  OnlineUpdateDaemonStats stats_ PP_GUARDED_BY(mutex_);
};

}  // namespace pp::online
