// One-call tenant registration. A TenantSpec names everything a serving
// tenant needs — cohort id, version-1 model, KV backend, state codec,
// score precision, joiner window/grace, learner + daemon config, optional
// checkpoint/journal durability — and CohortRegistryMap::register_tenant()
// turns it into a ready ServingStack: KV store + hidden-state store +
// registry-backed policy + PrecomputeService, completion listener feeding
// the cohort's learner (journal-first when durable), daemon start/stop
// through the handle. Every cross-field validation (duplicate id, bad KV
// geometry, int8 precision without an int8 codec or int8 replicas) fails
// at registration with std::invalid_argument — not at first use on a
// serving thread.
//
// Teardown order is encoded in the map's member order: stacks are
// destroyed before cohorts (a policy may be mid-reference to its
// registry), and the map's destructor stops every daemon before either.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "online/cohort_map.hpp"
#include "serving/hidden_store.hpp"
#include "serving/precompute_service.hpp"
#include "storage/kv_factory.hpp"
#include "storage/replay_journal.hpp"

namespace pp::online {

struct TenantSpec {
  /// Cohort id; also becomes the learner's metrics cohort label.
  std::string id;
  /// Version-1 weights. The registry takes shared ownership.
  std::shared_ptr<models::RnnModel> model;
  /// Schema/meta source for the learner's trainer; must outlive the map
  /// (same contract as CohortRegistryMap::create()).
  const data::Dataset* dataset_meta = nullptr;

  storage::KvBackendSpec backend;  // local | sharded(n) | durable(dir)
  serving::StateCodec codec = serving::StateCodec::kFloat32;
  serving::ScorePrecision precision = serving::ScorePrecision::kFloat32;
  double threshold = 0.5;

  /// Joiner window (session length) and grace. window <= 0 means "use
  /// dataset_meta->session_length".
  std::int64_t window = 0;
  std::int64_t grace = 0;
  /// Day-bucketing epoch for OnlineMetrics; kUseDatasetStart means "use
  /// dataset_meta->start_time".
  static constexpr std::int64_t kUseDatasetStart =
      std::numeric_limits<std::int64_t>::min();
  std::int64_t metrics_start = kUseDatasetStart;

  /// Learner / replica / daemon wiring (cohort label is stamped with id).
  CohortConfig cohort;

  /// Feed joined sessions to the cohort's learner via the completion
  /// listener. false = frozen tenant: serve only, capture nothing.
  bool capture = true;
  /// When non-empty: load the learner's training state from this path at
  /// registration (missing file = fresh start, reported by
  /// ServingStack::resumed_from_checkpoint()). Periodic saves are the
  /// daemon's job — set cohort.daemon.checkpoint_path for that.
  std::string learner_checkpoint;
  /// When non-empty: capture goes journal-first through a ReplayJournal in
  /// this directory (created if missing), and registration replays any
  /// existing journal into the learner before serving starts.
  std::string replay_journal_dir;
  /// Start the cohort's update daemon before register_tenant returns.
  bool start_daemon = false;
};

/// A ready-to-serve tenant: every piece wired, addresses stable for the
/// owning CohortRegistryMap's lifetime.
class ServingStack {
 public:
  ~ServingStack();
  ServingStack(const ServingStack&) = delete;
  ServingStack& operator=(const ServingStack&) = delete;

  const std::string& id() const { return id_; }
  storage::KvBackendKind backend_kind() const { return backend_kind_; }

  CohortRegistryMap::Cohort& cohort() { return *cohort_; }
  serving::KvStore& kv() { return *kv_; }
  serving::HiddenStateStore& hidden_store() { return *hidden_store_; }
  serving::RnnPolicy& policy() { return *policy_; }
  serving::PrecomputeService& service() { return *service_; }

  /// nullptr unless the spec named a replay_journal_dir.
  storage::ReplayJournal* journal() { return journal_.get(); }

  bool resumed_from_checkpoint() const { return resumed_from_checkpoint_; }
  std::size_t replayed_journal_sessions() const {
    return replayed_journal_sessions_;
  }

  /// Daemon lifecycle through the handle. start_daemon() is idempotent;
  /// stop_daemon() joins the background thread. The destructor (and the
  /// owning map's) stops a still-running daemon.
  void start_daemon();
  void stop_daemon();
  bool daemon_running() const { return daemon_started_; }

  /// Flushes the durable pieces (journal + durable KV) if present.
  void flush_durable();

 private:
  friend class CohortRegistryMap;
  ServingStack() = default;

  std::string id_;
  storage::KvBackendKind backend_kind_ = storage::KvBackendKind::kLocal;
  CohortRegistryMap::Cohort* cohort_ = nullptr;
  std::unique_ptr<serving::KvStore> kv_;
  std::unique_ptr<serving::HiddenStateStore> hidden_store_;
  std::unique_ptr<storage::ReplayJournal> journal_;
  std::unique_ptr<serving::RnnPolicy> policy_;
  std::unique_ptr<serving::PrecomputeService> service_;
  bool resumed_from_checkpoint_ = false;
  std::size_t replayed_journal_sessions_ = 0;
  bool daemon_started_ = false;
};

}  // namespace pp::online
