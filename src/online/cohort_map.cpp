#include "online/cohort_map.hpp"

#include <stdexcept>

// Completes ServingStack so the map members (and register_tenant, defined
// in tenant.cpp) instantiate cleanly here.
#include "online/tenant.hpp"

namespace pp::online {

namespace {

/// The cohort id IS the metrics cohort label: stamp it over the learner
/// config's (default) label so every tenant's round/gate/buffer series is
/// addressable without per-caller wiring.
OnlineLearnerConfig with_cohort_label(OnlineLearnerConfig config,
                                      const std::string& id) {
  config.cohort = id;
  return config;
}

}  // namespace

CohortRegistryMap::Cohort::Cohort(std::string id,
                                  std::shared_ptr<models::RnnModel> initial,
                                  const data::Dataset& dataset_meta,
                                  const CohortConfig& config)
    : id_(std::move(id)),
      registry_(initial, config.quantize_replicas ||
                             config.learner.gate_int8 ||
                             initial->quantized_serving()),
      learner_(registry_, dataset_meta, with_cohort_label(config.learner, id_)),
      daemon_(learner_, config.daemon) {}

CohortRegistryMap::CohortRegistryMap() = default;

CohortRegistryMap::~CohortRegistryMap() { stop_daemons(); }

CohortRegistryMap::Cohort& CohortRegistryMap::create(
    std::string id, std::shared_ptr<models::RnnModel> initial,
    const data::Dataset& dataset_meta, const CohortConfig& config) {
  if (id.empty()) {
    throw std::invalid_argument("CohortRegistryMap: empty cohort id");
  }
  if (initial == nullptr) {
    // Checked here (not in ModelRegistry) because the Cohort initializer
    // list reads initial->quantized_serving() before the registry's own
    // null guard could fire.
    throw std::invalid_argument("CohortRegistryMap: null initial model for "
                                "cohort " + id);
  }
  // Construct outside the map lock: seeding a registry (and, for int8
  // cohorts, building weight replicas) is not cheap, and serving threads
  // routing to other cohorts must not wait on an onboarding tenant.
  auto cohort =
      std::make_unique<Cohort>(id, std::move(initial), dataset_meta, config);
  MutexLock lock(mutex_);
  const auto [it, inserted] = cohorts_.emplace(std::move(id),
                                               std::move(cohort));
  if (!inserted) {
    throw std::invalid_argument("CohortRegistryMap: duplicate cohort id: " +
                                it->first);
  }
  return *it->second;
}

CohortRegistryMap::Cohort* CohortRegistryMap::find(std::string_view id) {
  MutexLock lock(mutex_);
  const auto it = cohorts_.find(id);
  return it == cohorts_.end() ? nullptr : it->second.get();
}

const CohortRegistryMap::Cohort* CohortRegistryMap::find(
    std::string_view id) const {
  MutexLock lock(mutex_);
  const auto it = cohorts_.find(id);
  return it == cohorts_.end() ? nullptr : it->second.get();
}

CohortRegistryMap::Cohort& CohortRegistryMap::at(std::string_view id) {
  if (Cohort* cohort = find(id); cohort != nullptr) return *cohort;
  throw std::out_of_range("CohortRegistryMap: unknown cohort id: " +
                          std::string(id));
}

bool CohortRegistryMap::observe(std::string_view id,
                                const serving::JoinedSession& joined) {
  Cohort* cohort = find(id);
  if (cohort == nullptr) return false;
  cohort->observe(joined);
  return true;
}

std::size_t CohortRegistryMap::size() const {
  MutexLock lock(mutex_);
  return cohorts_.size();
}

std::vector<std::string> CohortRegistryMap::ids() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(cohorts_.size());
  for (const auto& [id, cohort] : cohorts_) out.push_back(id);
  return out;
}

void CohortRegistryMap::start_daemons() {
  // Snapshot the cohort set, then start outside the map lock (start spawns
  // a thread; stop joins one — neither belongs under the routing lock).
  std::vector<Cohort*> cohorts;
  {
    MutexLock lock(mutex_);
    for (const auto& [id, cohort] : cohorts_) cohorts.push_back(cohort.get());
  }
  for (Cohort* cohort : cohorts) {
    // try_start is the atomic form of `if (!running()) start()`: two
    // concurrent start_daemons() calls (or one racing a direct start)
    // must both succeed, not throw on the check-then-act gap.
    cohort->daemon().try_start();
  }
}

void CohortRegistryMap::stop_daemons() {
  std::vector<Cohort*> cohorts;
  {
    MutexLock lock(mutex_);
    for (const auto& [id, cohort] : cohorts_) cohorts.push_back(cohort.get());
  }
  for (Cohort* cohort : cohorts) cohort->daemon().stop();
}

}  // namespace pp::online
