#include "online/tenant.hpp"

#include <stdexcept>
#include <utility>

#include "storage/durable_io.hpp"

namespace pp::online {

namespace {

/// Every cross-field check, before any cohort state exists. Throws
/// std::invalid_argument with the tenant id in the message.
void validate_spec(const TenantSpec& spec) {
  const std::string who = "register_tenant(" + spec.id + "): ";
  if (spec.id.empty()) {
    throw std::invalid_argument("register_tenant: empty tenant id");
  }
  if (spec.model == nullptr) {
    throw std::invalid_argument(who + "null model");
  }
  if (spec.dataset_meta == nullptr) {
    throw std::invalid_argument(who + "null dataset_meta");
  }
  if (spec.window < 0 || spec.grace < 0) {
    throw std::invalid_argument(who + "window/grace must be >= 0");
  }
  if (spec.window == 0 && spec.dataset_meta->session_length <= 0) {
    throw std::invalid_argument(
        who + "no window given and dataset_meta has no session_length");
  }
  try {
    storage::validate(spec.backend);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(who + e.what());
  }
  if (spec.precision == serving::ScorePrecision::kInt8) {
    // Mirror the RnnPolicy/registry int8 preconditions so they fail here,
    // with the tenant named, instead of inside the policy constructor.
    if (spec.codec != serving::StateCodec::kInt8) {
      throw std::invalid_argument(
          who + "int8 precision requires the kInt8 state codec");
    }
    const bool replicas = spec.cohort.quantize_replicas ||
                          spec.cohort.learner.gate_int8 ||
                          spec.model->quantized_serving();
    if (!replicas) {
      throw std::invalid_argument(
          who +
          "int8 precision requires int8 replicas: set "
          "cohort.quantize_replicas (or gate_int8, or pass a model with "
          "quantized serving enabled)");
    }
  }
}

}  // namespace

ServingStack::~ServingStack() { stop_daemon(); }

void ServingStack::start_daemon() {
  if (daemon_started_) return;
  // try_start: idempotent against the daemon having been started directly
  // through the cohort (e.g. CohortRegistryMap::start_daemons()).
  cohort_->daemon().try_start();
  daemon_started_ = true;
}

void ServingStack::stop_daemon() {
  if (!daemon_started_) return;
  cohort_->daemon().stop();
  daemon_started_ = false;
}

void ServingStack::flush_durable() {
  if (journal_ != nullptr) journal_->flush();
  if (auto* durable = dynamic_cast<storage::DurableKvStore*>(kv_.get());
      durable != nullptr) {
    durable->flush();
  }
}

ServingStack& CohortRegistryMap::register_tenant(const TenantSpec& spec) {
  validate_spec(spec);
  {
    // Duplicate check up front: create() would also throw, but only after
    // the KV backend (possibly a durable open/recovery) was built.
    MutexLock lock(mutex_);
    if (cohorts_.find(spec.id) != cohorts_.end()) {
      throw std::invalid_argument("register_tenant(" + spec.id +
                                  "): duplicate tenant id");
    }
  }

  // Build the backend before the cohort so a failed open leaves the map
  // untouched.
  auto stack = std::unique_ptr<ServingStack>(new ServingStack());
  stack->id_ = spec.id;
  stack->backend_kind_ = spec.backend.kind;
  stack->kv_ = storage::make_kv_store(spec.backend);
  stack->hidden_store_ =
      std::make_unique<serving::HiddenStateStore>(*stack->kv_, spec.codec);

  Cohort& cohort =
      create(spec.id, spec.model, *spec.dataset_meta, spec.cohort);
  stack->cohort_ = &cohort;

  if (!spec.learner_checkpoint.empty()) {
    // Resume the incremental-training state (shadow weights + Adam moments
    // + step count) exactly where a killed process left it; a missing file
    // is a fresh start.
    stack->resumed_from_checkpoint_ =
        cohort.learner().load_checkpoint(spec.learner_checkpoint);
  }
  if (!spec.replay_journal_dir.empty()) {
    // Opening the journal replays any existing stream through observe(),
    // rebuilding the replay buffer (and its reservoir RNG cursor)
    // bit-identically — so this must run after the checkpoint load and
    // before any live capture.
    storage::ensure_dir(spec.replay_journal_dir);
    storage::ReplayJournalConfig journal_config;
    journal_config.dir = spec.replay_journal_dir;
    OnlineLearner* feed = &cohort.learner();
    stack->journal_ = std::make_unique<storage::ReplayJournal>(
        journal_config,
        [feed](std::uint64_t user_id, std::int64_t session_start,
               const std::array<std::uint32_t, data::kMaxContextFields>&
                   context,
               bool access) {
          serving::JoinedSession joined;
          joined.user_id = user_id;
          joined.session_start = session_start;
          joined.context = context;
          joined.access = access;
          feed->observe(joined);
        });
    stack->replayed_journal_sessions_ = stack->journal_->stats().replayed;
  }

  stack->policy_ = std::make_unique<serving::RnnPolicy>(
      cohort.registry(), *stack->hidden_store_, spec.precision);
  const std::int64_t window =
      spec.window > 0 ? spec.window : spec.dataset_meta->session_length;
  const std::int64_t metrics_start =
      spec.metrics_start == TenantSpec::kUseDatasetStart
          ? spec.dataset_meta->start_time
          : spec.metrics_start;
  stack->service_ = std::make_unique<serving::PrecomputeService>(
      *stack->policy_, spec.threshold, window, spec.grace, metrics_start);

  if (spec.capture) {
    Cohort* capture_cohort = &cohort;
    storage::ReplayJournal* journal = stack->journal_.get();
    stack->service_->set_completion_listener(
        [capture_cohort, journal](const serving::JoinedSession& joined) {
          if (journal != nullptr) {
            // Journal first: a kill between the two re-observes the
            // session on reopen instead of losing it.
            journal->append(joined.user_id, joined.session_start,
                            joined.context, joined.access);
          }
          capture_cohort->observe(joined);
        });
  }

  if (spec.start_daemon) stack->start_daemon();

  MutexLock lock(mutex_);
  const auto [it, inserted] = stacks_.emplace(spec.id, std::move(stack));
  if (!inserted) {
    // Unreachable: the cohort insert above already holds the id.
    throw std::logic_error("register_tenant: stack id collision");
  }
  return *it->second;
}

ServingStack* CohortRegistryMap::find_stack(std::string_view id) {
  MutexLock lock(mutex_);
  const auto it = stacks_.find(id);
  return it == stacks_.end() ? nullptr : it->second.get();
}

}  // namespace pp::online
