// CohortRegistryMap — multi-tenant continual learning. Wang et al. frame
// the per-surface model as the deployment unit: tab prefetch, notification
// preload, and timeshift scheduling are different cohorts with different
// schemas, traffic shapes, and drift histories, yet one serving process
// hosts them all. Each cohort id keys an independent triple
//
//   ModelRegistry + OnlineLearner (owning its SessionReplayBuffer)
//                 + OnlineUpdateDaemon
//
// so model versions, replay data, gate decisions, and update cadences
// never leak across surfaces: cohort A relearning an inverted rule cannot
// move cohort B's published weights by construction, because nothing but
// cohort B's own learner holds a path to cohort B's registry. Serving
// stacks bind per cohort the same way a single-tenant stack binds to one
// registry — construct `RnnPolicy(cohort.registry(), store)` and the
// existing begin_batch() pinning gives each cohort's snapshot groups
// exactly-one-version semantics, independently of every other cohort.
//
// Cohorts are created up front (or on tenant onboarding) and never
// removed; Cohort addresses are stable for the map's lifetime, so serving
// threads may cache `Cohort*` across calls.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "online/model_registry.hpp"
#include "online/online_learner.hpp"
#include "online/update_daemon.hpp"
#include "util/mutex.hpp"

namespace pp::online {

struct TenantSpec;   // tenant.hpp
class ServingStack;  // tenant.hpp

/// Per-cohort wiring: the learner config (which embeds the replay-buffer
/// config, e.g. reservoir admission for a heavy-tailed cohort) plus the
/// registry replica policy and the update daemon's schedule.
struct CohortConfig {
  OnlineLearnerConfig learner;
  /// Force int8 replica rebuilds on publish. Effective policy is the OR of
  /// this, learner.gate_int8, and the seed model already serving int8.
  bool quantize_replicas = false;
  /// Daemon schedule; set daemon.checkpoint_path per cohort (paths are not
  /// derived — two cohorts writing one file would corrupt both).
  OnlineUpdateDaemonConfig daemon;
};

class CohortRegistryMap {
 public:
  /// One tenant's isolated serve→learn→serve loop.
  class Cohort {
   public:
    Cohort(std::string id, std::shared_ptr<models::RnnModel> initial,
           const data::Dataset& dataset_meta, const CohortConfig& config);

    const std::string& id() const { return id_; }
    ModelRegistry& registry() { return registry_; }
    const ModelRegistry& registry() const { return registry_; }
    OnlineLearner& learner() { return learner_; }
    const OnlineLearner& learner() const { return learner_; }
    OnlineUpdateDaemon& daemon() { return daemon_; }
    const OnlineUpdateDaemon& daemon() const { return daemon_; }
    const SessionReplayBuffer& buffer() const { return learner_.buffer(); }

    /// Capture path — wire as this cohort's service completion listener.
    void observe(const serving::JoinedSession& joined) {
      learner_.observe(joined);
    }

   private:
    std::string id_;
    ModelRegistry registry_;
    OnlineLearner learner_;
    OnlineUpdateDaemon daemon_;
  };

  /// Out-of-line (like the destructor) so TUs that only see the forward
  /// declaration of ServingStack never instantiate stacks_'s teardown.
  CohortRegistryMap();
  CohortRegistryMap(const CohortRegistryMap&) = delete;
  CohortRegistryMap& operator=(const CohortRegistryMap&) = delete;
  /// Stops every cohort's daemon (joining their threads) before teardown.
  ~CohortRegistryMap();

  /// Registers a new cohort seeded with `initial` (version 1). Throws
  /// std::invalid_argument on a duplicate or empty id. The daemon is NOT
  /// started — call start_daemons() (or cohort.daemon().start()) once the
  /// serving wiring is in place.
  Cohort& create(std::string id, std::shared_ptr<models::RnnModel> initial,
                 const data::Dataset& dataset_meta,
                 const CohortConfig& config);

  /// One-call tenant onboarding (tenant.hpp): validates the whole spec
  /// (duplicate/empty id, KV geometry, int8 precision vs codec/replicas),
  /// creates the cohort, and wires a complete serving stack — KV store +
  /// hidden-state store + registry-backed policy + PrecomputeService with
  /// the completion listener feeding the cohort's learner (journal-first
  /// when spec.replay_journal_dir is set). Throws std::invalid_argument
  /// before any cohort state is created on a bad spec. The returned handle
  /// is address-stable for the map's lifetime.
  ServingStack& register_tenant(const TenantSpec& spec);

  /// nullptr when no stack was registered under the id (find() may still
  /// return a bare cohort created via create()).
  ServingStack* find_stack(std::string_view id);

  /// nullptr when the cohort id is unknown. The returned pointer stays
  /// valid for the map's lifetime.
  Cohort* find(std::string_view id);
  const Cohort* find(std::string_view id) const;
  /// Throws std::out_of_range on an unknown id.
  Cohort& at(std::string_view id);

  /// Routes one joined session to its cohort's learner; returns false
  /// (dropping the session) when the cohort id is unknown.
  bool observe(std::string_view id, const serving::JoinedSession& joined);

  std::size_t size() const;
  /// Sorted cohort ids.
  std::vector<std::string> ids() const;

  /// Starts / stops every cohort's update daemon. start_daemons skips
  /// cohorts already running; stop_daemons joins each background thread.
  void start_daemons();
  void stop_daemons();

 private:
  mutable Mutex mutex_;
  /// Ordered map: deterministic ids() iteration; unique_ptr keeps Cohort
  /// addresses stable across inserts.
  std::map<std::string, std::unique_ptr<Cohort>, std::less<>> cohorts_
      PP_GUARDED_BY(mutex_);
  /// Serving stacks from register_tenant(). Declared after cohorts_ so
  /// they destroy FIRST: a stack's policy/service reference its cohort's
  /// registry/learner, which must still be alive (daemons are stopped
  /// before either, in the destructor body).
  std::map<std::string, std::unique_ptr<ServingStack>, std::less<>> stacks_
      PP_GUARDED_BY(mutex_);
};

}  // namespace pp::online
