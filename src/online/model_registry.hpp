// Versioned model registry with atomic hot-swap — the publish half of the
// §10 "reusable models" loop.
//
// Readers (serving policies) acquire an immutable `shared_ptr<const
// ModelVersion>` snapshot RCU-style and keep scoring against it for as
// long as they like; a publish builds the next fully-initialized version
// off to the side (int8 weight replicas included, when the registry serves
// a quantized tier) and swaps one atomic pointer. No reader ever takes the
// writer mutex, no reader ever observes a half-updated model, and old
// versions stay alive until their last reader drops the snapshot.
//
// The score path itself doesn't even touch the atomic: RnnPolicy re-pins
// its snapshot only at PrecomputeService batch-group boundaries (under the
// service mutex), so one snapshot group is always scored by exactly one
// version — the invariant the deterministic hot-swap replay tests pin.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "models/rnn_model.hpp"
#include "util/mutex.hpp"

namespace pp::online {

/// One immutable published version. `model` is never mutated after
/// publish; replacing the version is the only way to change weights.
struct ModelVersion {
  std::uint64_t version = 0;
  std::shared_ptr<const models::RnnModel> model;
};

struct ModelRegistryStats {
  std::size_t publishes = 0;
  std::size_t rollbacks = 0;
};

class ModelRegistry {
 public:
  /// Seeds version 1 with `initial`; replica policy is inferred — int8
  /// replicas are rebuilt per publish iff `initial` already has quantized
  /// serving enabled.
  explicit ModelRegistry(std::shared_ptr<models::RnnModel> initial);
  /// Explicit replica policy: when `quantize_replicas` is true every
  /// published version gets its int8 weight replicas (re)built before the
  /// swap — required when any reader serves ScorePrecision::kInt8, so the
  /// quantized tier never observes a version whose replicas lag its f32
  /// weights.
  ModelRegistry(std::shared_ptr<models::RnnModel> initial,
                bool quantize_replicas);

  /// Lock-free reader snapshot (libstdc++ backs the atomic shared_ptr
  /// load with a tiny spinlock, never the writer mutex).
  std::shared_ptr<const ModelVersion> current() const {
    return current_.load(std::memory_order_acquire);
  }
  std::uint64_t current_version() const { return current()->version; }
  /// The retained version just below current (nullptr at the seed). What
  /// rollback() would restore — the learner scores it when deciding
  /// whether a drifted publish should be reverted.
  std::shared_ptr<const ModelVersion> previous() const;

  /// Atomically publishes `model` as the next version. Validates that the
  /// network geometry matches the seed version (stored per-user hidden
  /// states must stay readable across swaps; throws std::invalid_argument
  /// on mismatch), switches the model to inference mode, and rebuilds the
  /// int8 replicas when configured — all *before* the pointer swap.
  /// Returns the new version number.
  std::uint64_t publish(std::shared_ptr<models::RnnModel> model);

  /// Reverts to the previous retained version (bounded history). Returns
  /// false when already at the oldest retained version.
  bool rollback();

  ModelRegistryStats stats() const;
  std::size_t retained_versions() const;
  bool quantize_replicas() const { return quantize_replicas_; }

 private:
  static constexpr std::size_t kMaxHistory = 4;

  bool quantize_replicas_;
  mutable Mutex writer_mutex_;
  std::atomic<std::shared_ptr<const ModelVersion>> current_;
  /// Retained versions, oldest first; back() == current.
  std::vector<std::shared_ptr<const ModelVersion>> history_
      PP_GUARDED_BY(writer_mutex_);
  std::uint64_t next_version_ PP_GUARDED_BY(writer_mutex_) = 1;
  ModelRegistryStats stats_ PP_GUARDED_BY(writer_mutex_);
};

}  // namespace pp::online
