#include "online/model_registry.hpp"

#include <stdexcept>

namespace pp::online {

namespace {

/// The geometry contract a publish must keep: everything that determines
/// the layout of stored per-user hidden states and of the encoded inputs.
/// (mlp_hidden / dropout / latent_cross may differ — they only change the
/// head — but keeping the full architecture fixed is the simpler, safer
/// contract for hot-swap.)
void check_geometry(const models::RnnModel& a, const models::RnnModel& b) {
  const auto& ca = a.network().config();
  const auto& cb = b.network().config();
  const bool same = ca.feature_size == cb.feature_size &&
                    ca.time_buckets == cb.time_buckets &&
                    ca.hidden_size == cb.hidden_size &&
                    ca.mlp_hidden == cb.mlp_hidden &&
                    ca.cell == cb.cell && ca.num_layers == cb.num_layers &&
                    ca.latent_cross == cb.latent_cross &&
                    a.timeshift() == b.timeshift();
  if (!same) {
    throw std::invalid_argument(
        "ModelRegistry::publish: network geometry differs from the seed "
        "version (stored hidden states would become unreadable)");
  }
}

}  // namespace

ModelRegistry::ModelRegistry(std::shared_ptr<models::RnnModel> initial)
    : ModelRegistry(initial, initial && initial->quantized_serving()) {}

ModelRegistry::ModelRegistry(std::shared_ptr<models::RnnModel> initial,
                             bool quantize_replicas)
    : quantize_replicas_(quantize_replicas) {
  if (!initial) {
    throw std::invalid_argument("ModelRegistry: null initial model");
  }
  initial->network().set_training(false);
  if (quantize_replicas_ && !initial->quantized_serving()) {
    initial->enable_quantized_serving();
  }
  auto version = std::make_shared<ModelVersion>();
  version->version = next_version_++;
  version->model = std::move(initial);
  history_.push_back(version);
  current_.store(version, std::memory_order_release);
}

std::uint64_t ModelRegistry::publish(
    std::shared_ptr<models::RnnModel> model) {
  if (!model) {
    throw std::invalid_argument("ModelRegistry::publish: null model");
  }
  MutexLock lock(writer_mutex_);
  check_geometry(*history_.back()->model, *model);
  // Fully initialize the version *before* it becomes visible: inference
  // mode, and int8 replicas rebuilt from these exact f32 weights so a
  // kInt8 reader can never pair new weights with stale replicas (or vice
  // versa). enable_quantized_serving() rebuilds unconditionally.
  model->network().set_training(false);
  if (quantize_replicas_) model->enable_quantized_serving();

  auto version = std::make_shared<ModelVersion>();
  version->version = next_version_++;
  version->model = std::move(model);
  history_.push_back(version);
  if (history_.size() > kMaxHistory) {
    history_.erase(history_.begin());
  }
  current_.store(version, std::memory_order_release);
  ++stats_.publishes;
  return version->version;
}

std::shared_ptr<const ModelVersion> ModelRegistry::previous() const {
  MutexLock lock(writer_mutex_);
  if (history_.size() < 2) return nullptr;
  return history_[history_.size() - 2];
}

bool ModelRegistry::rollback() {
  MutexLock lock(writer_mutex_);
  if (history_.size() < 2) return false;
  history_.pop_back();
  current_.store(history_.back(), std::memory_order_release);
  ++stats_.rollbacks;
  return true;
}

ModelRegistryStats ModelRegistry::stats() const {
  MutexLock lock(writer_mutex_);
  return stats_;
}

std::size_t ModelRegistry::retained_versions() const {
  MutexLock lock(writer_mutex_);
  return history_.size();
}

}  // namespace pp::online
