#include "online/replay_buffer.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace pp::online {

SessionReplayBuffer::SessionReplayBuffer(ReplayBufferConfig config)
    : config_(config), admission_rng_(config.admission_seed) {
  if (config_.capacity == 0 || config_.per_user_cap == 0) {
    throw std::invalid_argument("SessionReplayBuffer: zero capacity");
  }
  if (config_.admission == AdmissionPolicy::kReservoir) {
    reservoir_.reserve(config_.capacity);
  }
}

void SessionReplayBuffer::add(
    std::uint64_t user_id, std::int64_t session_start,
    const std::array<std::uint32_t, data::kMaxContextFields>& context,
    bool access) {
  MutexLock lock(mutex_);
  ++stats_.observed;
  latest_time_ = std::max(latest_time_, session_start);

  Entry entry;
  entry.session.timestamp = session_start;
  entry.session.context = context;
  entry.session.access = access ? 1 : 0;
  entry.seq = next_seq_++;

  if (config_.admission == AdmissionPolicy::kReservoir) {
    add_reservoir_locked(user_id, entry);
    return;
  }

  std::deque<Entry>& log = per_user_[user_id];
  log.push_back(entry);
  arrival_.emplace_back(user_id, entry.seq);
  ++total_;

  if (log.size() > config_.per_user_cap) {
    log.pop_front();
    --total_;
    ++stats_.evicted_user_cap;
  }
  if (total_ > config_.capacity) evict_capacity_locked();
  // Per-user-cap evictions leave stale entries behind in the arrival
  // FIFO (only capacity evictions pop it); without a bound a few heavy
  // users would grow arrival_ forever. Compact once it exceeds twice the
  // live count — amortized O(1) per add.
  if (arrival_.size() > std::max<std::size_t>(64, 2 * config_.capacity)) {
    compact_arrival_locked();
  }
}

void SessionReplayBuffer::add_reservoir_locked(std::uint64_t user_id,
                                               Entry entry) {
  if (total_ < config_.capacity) {
    per_user_[user_id].push_back(entry);
    reservoir_.emplace_back(user_id, entry.seq);
    ++total_;
    return;
  }
  // Algorithm R: observation n (== stats_.observed, already counted) is
  // admitted with probability capacity/n by drawing a uniform slot in
  // [0, n) and replacing only when it lands inside the reservoir. Every
  // retained entry is then a uniform sample over the whole stream.
  const std::uint64_t slot = admission_rng_.uniform_index(stats_.observed);
  if (slot >= reservoir_.size()) {
    ++stats_.rejected_reservoir;
    return;
  }
  const auto [victim_user, victim_seq] = reservoir_[slot];
  std::deque<Entry>& victim_log = per_user_.at(victim_user);
  // Per-user deques hold strictly increasing seqs (appends only), so the
  // victim is found by binary search; erasing mid-deque is O(log n +
  // shift), bounded by the victim user's retained share.
  const auto it = std::lower_bound(
      victim_log.begin(), victim_log.end(), victim_seq,
      [](const Entry& e, std::uint64_t seq) { return e.seq < seq; });
  victim_log.erase(it);
  if (victim_log.empty()) per_user_.erase(victim_user);
  per_user_[user_id].push_back(entry);
  reservoir_[slot] = {user_id, entry.seq};
  ++stats_.evicted_reservoir;
}

void SessionReplayBuffer::compact_arrival_locked() {
  std::deque<std::pair<std::uint64_t, std::uint64_t>> live;
  for (const auto& [user_id, seq] : arrival_) {
    const auto it = per_user_.find(user_id);
    // Per-user deques hold strictly increasing seqs, so an entry is live
    // iff its seq is still at or after the retained front.
    if (it != per_user_.end() && !it->second.empty() &&
        seq >= it->second.front().seq) {
      live.emplace_back(user_id, seq);
    }
  }
  arrival_.swap(live);
}

void SessionReplayBuffer::evict_capacity_locked() {
  while (total_ > config_.capacity && !arrival_.empty()) {
    const auto [user_id, seq] = arrival_.front();
    arrival_.pop_front();
    const auto it = per_user_.find(user_id);
    if (it == per_user_.end() || it->second.empty() ||
        it->second.front().seq != seq) {
      continue;  // already gone via the per-user cap — stale FIFO entry
    }
    it->second.pop_front();
    if (it->second.empty()) per_user_.erase(it);
    --total_;
    ++stats_.evicted_capacity;
  }
}

std::size_t SessionReplayBuffer::size() const {
  MutexLock lock(mutex_);
  return total_;
}

std::size_t SessionReplayBuffer::arrival_entries() const {
  MutexLock lock(mutex_);
  return arrival_.size();
}

std::size_t SessionReplayBuffer::user_count() const {
  MutexLock lock(mutex_);
  return per_user_.size();
}

std::int64_t SessionReplayBuffer::latest_time() const {
  MutexLock lock(mutex_);
  return latest_time_;
}

ReplayBufferStats SessionReplayBuffer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

data::Dataset SessionReplayBuffer::snapshot(const data::Dataset& meta,
                                            std::int64_t until) const {
  data::Dataset out = meta.clone_meta();
  out.name = meta.name.empty() ? "replay" : meta.name + "-replay";
  // start/end_time are recomputed below from the included sessions.
  out.start_time = 0;
  out.end_time = 0;

  MutexLock lock(mutex_);
  std::int64_t min_t = 0, max_t = 0;
  bool any = false;
  // Deterministic user order regardless of hash-map layout.
  std::vector<std::uint64_t> user_ids;
  user_ids.reserve(per_user_.size());
  for (const auto& [user_id, log] : per_user_) user_ids.push_back(user_id);
  std::sort(user_ids.begin(), user_ids.end());
  for (const std::uint64_t user_id : user_ids) {
    const std::deque<Entry>& log = per_user_.at(user_id);
    data::UserLog user;
    user.user_id = user_id;
    for (const Entry& e : log) {
      if (until != 0 && e.session.timestamp >= until) continue;
      user.sessions.push_back(e.session);
      if (!any || e.session.timestamp < min_t) min_t = e.session.timestamp;
      if (!any || e.session.timestamp > max_t) max_t = e.session.timestamp;
      any = true;
    }
    if (user.sessions.empty()) continue;
    // The joiner delivers in fire order (ascending per user), but a
    // restored or merged buffer may not be; the UserLog contract is
    // ascending timestamps.
    std::stable_sort(user.sessions.begin(), user.sessions.end(),
                     [](const data::Session& a, const data::Session& b) {
                       return a.timestamp < b.timestamp;
                     });
    out.users.push_back(std::move(user));
  }
  if (any) {
    out.start_time = data::day_start(min_t);
    out.end_time = data::day_start(max_t) + 86400;
  }
  return out;
}

}  // namespace pp::online
