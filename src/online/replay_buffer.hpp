// Bounded session replay buffer — the capture half of the §10 "reusable
// models" loop. Completed labeled sessions flow out of the serving tier's
// stream joiner into this buffer; the OnlineLearner periodically compiles
// its contents into a Dataset snapshot and runs incremental fits on it.
//
// Retention under the default FIFO-with-recency admission is bounded by
// two caps:
//  * a per-user cap, so a heavy user's firehose cannot crowd the cohort
//    out of the buffer (their own oldest sessions go first), and
//  * a global capacity, evicting the globally oldest retained session
//    (across users) once exceeded.
// Both evictions drop from the *old* end, so the buffer always holds the
// most recent behaviour — what an online learner should be tracking.
//
// The alternative kReservoir admission targets heavy-tailed cohorts whose
// recent window is dominated by a bursty minority: Algorithm R keeps a
// uniform sample *over the whole observed stream* (each of the n observed
// sessions is retained with probability capacity/n, independent of arrival
// order or owner), trading recency for coverage. The sampler is seeded and
// fully deterministic for a given (seed, stream) pair.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace pp::online {

/// How `add` decides what the bounded buffer retains once full.
enum class AdmissionPolicy {
  /// Evict oldest-first (per-user cap + global capacity): the buffer
  /// tracks the most recent behaviour.
  kFifoRecency,
  /// Reservoir sampling (Algorithm R): a uniform sample over the entire
  /// observed stream. The per-user cap is NOT applied — it would bias the
  /// uniform-over-stream guarantee (heavy users are represented exactly in
  /// proportion to their share of the stream).
  kReservoir,
};

struct ReplayBufferConfig {
  /// Global bound on buffered sessions (the reservoir size in kReservoir).
  std::size_t capacity = 100000;
  /// Per-user bound (heavy users don't dominate the replay set). Ignored
  /// under kReservoir.
  std::size_t per_user_cap = 512;
  AdmissionPolicy admission = AdmissionPolicy::kFifoRecency;
  /// Seed for the kReservoir admission draws (deterministic replay).
  std::uint64_t admission_seed = 42;
};

struct ReplayBufferStats {
  std::size_t observed = 0;
  std::size_t evicted_user_cap = 0;
  std::size_t evicted_capacity = 0;
  /// kReservoir only: retained sessions replaced by a later admission.
  std::size_t evicted_reservoir = 0;
  /// kReservoir only: observed sessions the sampler never admitted.
  std::size_t rejected_reservoir = 0;
};

/// Thread-safe: the serving tier adds from its completion callback while
/// the learner snapshots from an update thread; one internal mutex guards
/// everything (the add path is O(1) amortized).
class SessionReplayBuffer {
 public:
  explicit SessionReplayBuffer(ReplayBufferConfig config);

  /// Captures one completed (context, access) session.
  void add(std::uint64_t user_id, std::int64_t session_start,
           const std::array<std::uint32_t, data::kMaxContextFields>& context,
           bool access);

  std::size_t size() const;
  std::size_t user_count() const;
  /// Diagnostic: live arrival-FIFO length (compaction bounds it at ~2x
  /// capacity even when only the per-user cap is evicting).
  std::size_t arrival_entries() const;
  /// Largest session_start observed (not evicted-aware); 0 when empty.
  std::int64_t latest_time() const;
  ReplayBufferStats stats() const;

  /// Compiles the retained sessions with session_start < `until` (0 keeps
  /// all) into a Dataset: meta fields (schema, session length, latency,
  /// timeshift, peak) are copied from `meta`, start/end_time are the day
  /// bounds of the included sessions, and each user's log is ascending by
  /// timestamp. Users with no included sessions are omitted.
  data::Dataset snapshot(const data::Dataset& meta,
                         std::int64_t until = 0) const;

 private:
  struct Entry {
    data::Session session;
    std::uint64_t seq = 0;  // global arrival order
  };

  void evict_capacity_locked() PP_REQUIRES(mutex_);
  /// Drops arrival-FIFO entries already evicted by the per-user cap
  /// (bounds arrival_ at ~2x capacity).
  void compact_arrival_locked() PP_REQUIRES(mutex_);
  /// Algorithm R admission: below capacity every entry is retained; past
  /// it, observation n replaces a uniformly random retained slot with
  /// probability capacity/n.
  void add_reservoir_locked(std::uint64_t user_id, Entry entry)
      PP_REQUIRES(mutex_);

  ReplayBufferConfig config_;
  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, std::deque<Entry>> per_user_
      PP_GUARDED_BY(mutex_);
  /// Global arrival FIFO of (user_id, seq); entries already evicted by the
  /// per-user cap are skipped lazily when the capacity bound pops them.
  /// Unused under kReservoir.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> arrival_
      PP_GUARDED_BY(mutex_);
  /// kReservoir only: the retained slots as (user_id, seq), replaceable in
  /// O(1) by a uniform index draw.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> reservoir_
      PP_GUARDED_BY(mutex_);
  Rng admission_rng_ PP_GUARDED_BY(mutex_){0};
  std::uint64_t next_seq_ PP_GUARDED_BY(mutex_) = 0;
  std::size_t total_ PP_GUARDED_BY(mutex_) = 0;
  std::int64_t latest_time_ PP_GUARDED_BY(mutex_) = 0;
  ReplayBufferStats stats_ PP_GUARDED_BY(mutex_);
};

}  // namespace pp::online
