// Bounded session replay buffer — the capture half of the §10 "reusable
// models" loop. Completed labeled sessions flow out of the serving tier's
// stream joiner into this buffer; the OnlineLearner periodically compiles
// its contents into a Dataset snapshot and runs incremental fits on it.
//
// Retention is FIFO-with-recency under two caps:
//  * a per-user cap, so a heavy user's firehose cannot crowd the cohort
//    out of the buffer (their own oldest sessions go first), and
//  * a global capacity, evicting the globally oldest retained session
//    (across users) once exceeded.
// Both evictions drop from the *old* end, so the buffer always holds the
// most recent behaviour — what an online learner should be tracking.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "data/dataset.hpp"

namespace pp::online {

struct ReplayBufferConfig {
  /// Global bound on buffered sessions.
  std::size_t capacity = 100000;
  /// Per-user bound (heavy users don't dominate the replay set).
  std::size_t per_user_cap = 512;
};

struct ReplayBufferStats {
  std::size_t observed = 0;
  std::size_t evicted_user_cap = 0;
  std::size_t evicted_capacity = 0;
};

/// Thread-safe: the serving tier adds from its completion callback while
/// the learner snapshots from an update thread; one internal mutex guards
/// everything (the add path is O(1) amortized).
class SessionReplayBuffer {
 public:
  explicit SessionReplayBuffer(ReplayBufferConfig config);

  /// Captures one completed (context, access) session.
  void add(std::uint64_t user_id, std::int64_t session_start,
           const std::array<std::uint32_t, data::kMaxContextFields>& context,
           bool access);

  std::size_t size() const;
  std::size_t user_count() const;
  /// Diagnostic: live arrival-FIFO length (compaction bounds it at ~2x
  /// capacity even when only the per-user cap is evicting).
  std::size_t arrival_entries() const;
  /// Largest session_start observed (not evicted-aware); 0 when empty.
  std::int64_t latest_time() const;
  ReplayBufferStats stats() const;

  /// Compiles the retained sessions with session_start < `until` (0 keeps
  /// all) into a Dataset: meta fields (schema, session length, latency,
  /// timeshift, peak) are copied from `meta`, start/end_time are the day
  /// bounds of the included sessions, and each user's log is ascending by
  /// timestamp. Users with no included sessions are omitted.
  data::Dataset snapshot(const data::Dataset& meta,
                         std::int64_t until = 0) const;

 private:
  struct Entry {
    data::Session session;
    std::uint64_t seq = 0;  // global arrival order
  };

  void evict_capacity_locked();
  /// Drops arrival-FIFO entries already evicted by the per-user cap
  /// (bounds arrival_ at ~2x capacity).
  void compact_arrival_locked();

  ReplayBufferConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::deque<Entry>> per_user_;
  /// Global arrival FIFO of (user_id, seq); entries already evicted by the
  /// per-user cap are skipped lazily when the capacity bound pops them.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> arrival_;
  std::uint64_t next_seq_ = 0;
  std::size_t total_ = 0;
  std::int64_t latest_time_ = 0;
  ReplayBufferStats stats_;
};

}  // namespace pp::online
