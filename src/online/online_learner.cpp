#include "online/online_learner.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "eval/metrics.hpp"
#include "obs/metrics.hpp"
#include "storage/durable_io.hpp"

namespace pp::online {

namespace {

std::vector<std::size_t> all_users(const data::Dataset& dataset) {
  std::vector<std::size_t> users(dataset.users.size());
  std::iota(users.begin(), users.end(), 0);
  return users;
}

constexpr std::uint32_t kCheckpointMagic = 0x5050434bu;  // "KCPP" LE
// v2: the trainer's RNG cursors (minibatch shuffle + per-replica dropout)
// ride along with the Adam state, so a resumed learner draws the same
// minibatch orders an uninterrupted run would.
constexpr std::uint32_t kCheckpointVersion = 2;

}  // namespace

OnlineLearner::OnlineLearner(ModelRegistry& registry,
                             const data::Dataset& dataset_meta,
                             OnlineLearnerConfig config)
    : config_(config),
      registry_(&registry),
      meta_(dataset_meta.clone_meta()),
      buffer_(config.buffer) {
  if (config_.gate_int8 && !registry.quantize_replicas()) {
    throw std::invalid_argument(
        "OnlineLearner: gate_int8 needs a registry that rebuilds int8 "
        "replicas on publish");
  }
  const auto current = registry.current();
  shadow_ = current->model->clone();

  train::RnnTrainerConfig trainer_config;
  trainer_config.epochs = config_.epochs_per_round;
  trainer_config.learning_rate = config_.learning_rate;
  trainer_config.minibatch_users = config_.minibatch_users;
  trainer_config.grad_clip = config_.grad_clip;
  // Rounds are small; the sequential strategy keeps the incremental loop
  // replica-free and deterministic for a given config.
  trainer_config.strategy = train::BatchStrategy::kSequential;
  trainer_config.num_threads = 1;
  trainer_config.sequence = current->model->sequence_config();
  trainer_config.timeshift = current->model->timeshift();
  trainer_config.seed = config_.seed;
  trainer_ =
      std::make_unique<train::RnnTrainer>(shadow_->network(), trainer_config);

  auto& obs_registry = obs::MetricsRegistry::global();
  const obs::MetricsRegistry::Labels cohort{{"cohort", config_.cohort}};
  obs_round_ns_ = &obs_registry.histogram("pp_online_round_ns", cohort);
  obs_gate_publish_ = &obs_registry.counter(
      "pp_online_gate_total", {{"cohort", config_.cohort},
                               {"result", "publish"}});
  obs_gate_reject_ = &obs_registry.counter(
      "pp_online_gate_total",
      {{"cohort", config_.cohort}, {"result", "reject"}});
  obs_gate_skip_ = &obs_registry.counter(
      "pp_online_gate_total", {{"cohort", config_.cohort}, {"result", "skip"}});
  obs_buffer_sessions_ =
      &obs_registry.gauge("pp_online_buffer_sessions", cohort);
}

OnlineLearner::~OnlineLearner() = default;

void OnlineLearner::observe(const serving::JoinedSession& joined) {
  // Deliberately does NOT take mutex_: observe runs on the serving side
  // (under the service mutex) and must never block behind a training
  // round. The buffer has its own short-lived lock and already counts
  // observations; stats() reads the count from there.
  buffer_.add(joined.user_id, joined.session_start, joined.context,
              joined.access);
  // Occupancy gauge: one relaxed store after the buffer's own short lock.
  obs_buffer_sessions_->set(static_cast<double>(buffer_.size()));
}

double OnlineLearner::gate_pr_auc(const models::RnnModel& model,
                                  const data::Dataset& eval_ds,
                                  std::span<const std::size_t> users,
                                  std::int64_t emit_from,
                                  std::size_t* predictions) const {
  const train::ScoredSeries series =
      config_.gate_int8 ? model.score_q8(eval_ds, users, emit_from)
                        : model.score(eval_ds, users, emit_from);
  *predictions = series.scores.size();
  bool has_positive = false, has_negative = false;
  for (const float y : series.labels) {
    (y > 0.5f ? has_positive : has_negative) = true;
  }
  if (!has_positive || !has_negative) {
    return std::numeric_limits<double>::quiet_NaN();  // ungateable window
  }
  return eval::pr_auc(series.scores, series.labels);
}

OnlineUpdateReport OnlineLearner::run_update_round() {
  MutexLock lock(mutex_);
  // Round duration is recorded unconditionally (rounds are rare — two
  // clock reads per round are noise next to an epoch of training).
  obs::ScopedTimer round_timer(obs_round_ns_);
  OnlineUpdateReport report;
  ++stats_.rounds;
  report.version = registry_->current_version();

  const std::int64_t latest = buffer_.latest_time();
  const std::int64_t holdout_start = latest - config_.holdout_window;
  // holdout_start <= 0 means the buffer doesn't even span one holdout
  // window yet — and 0 in particular would collide with the "keep all" /
  // "emit all" sentinels of snapshot() and score_users, silently training
  // on the holdout. No gateable round exists either way.
  if (holdout_start <= 0) {
    ++stats_.skipped;
    obs_gate_skip_->inc();
    return report;
  }
  // Both datasets come from snapshot() so there is exactly one
  // implementation of the time cutoff (and of the day-bound recompute);
  // the two short buffer locks are cheaper than semantic drift between a
  // hand-rolled filter and the tested `until` path.
  const data::Dataset train_ds = buffer_.snapshot(meta_, holdout_start);
  const data::Dataset eval_ds = buffer_.snapshot(meta_);
  report.train_sessions = train_ds.total_sessions();
  if (report.train_sessions < config_.min_train_sessions) {
    ++stats_.skipped;
    obs_gate_skip_->inc();
    return report;
  }

  // ---- incremental fit on everything strictly before the holdout ----
  trainer_->set_loss_from(
      config_.loss_window > 0 ? holdout_start - config_.loss_window : 0);
  trainer_->fit(train_ds, all_users(train_ds));
  report.ran = true;
  if (config_.gate_int8 && !shadow_->quantized_serving()) {
    // First round only; RnnTrainer::fit refreshes the replicas afterwards.
    shadow_->enable_quantized_serving();
  }

  // ---- prequential gate on the held-out window ----
  const std::vector<std::size_t> eval_users = all_users(eval_ds);
  const auto current = registry_->current();
  std::size_t candidate_preds = 0, published_preds = 0;
  const double candidate_pr = gate_pr_auc(*shadow_, eval_ds, eval_users,
                                          holdout_start, &candidate_preds);
  const double published_pr = gate_pr_auc(*current->model, eval_ds,
                                          eval_users, holdout_start,
                                          &published_preds);
  report.candidate_pr_auc = candidate_pr;
  report.published_pr_auc = published_pr;
  report.holdout_predictions = candidate_preds;
  if (candidate_preds < config_.min_holdout_predictions ||
      std::isnan(candidate_pr) || std::isnan(published_pr)) {
    ++stats_.skipped;  // trained, but no gate decision was possible
    obs_gate_skip_->inc();
    return report;
  }

  if (candidate_pr >= published_pr - config_.max_pr_auc_regression) {
    report.version = registry_->publish(
        std::shared_ptr<models::RnnModel>(shadow_->clone()));
    report.published = true;
    ++stats_.publishes;
    obs_gate_publish_->inc();
    return report;
  }

  ++stats_.rejects;
  obs_gate_reject_->inc();
  if (config_.rollback_on_regression) {
    if (const auto prev = registry_->previous(); prev != nullptr) {
      std::size_t prev_preds = 0;
      const double prev_pr = gate_pr_auc(*prev->model, eval_ds, eval_users,
                                         holdout_start, &prev_preds);
      if (!std::isnan(prev_pr) &&
          published_pr < prev_pr - config_.max_pr_auc_regression &&
          registry_->rollback()) {
        report.rolled_back = true;
        ++stats_.rollbacks;
      }
    }
  }
  report.version = registry_->current_version();
  return report;
}

OnlineLearnerStats OnlineLearner::stats() const {
  MutexLock lock(mutex_);
  OnlineLearnerStats out = stats_;
  out.observed_sessions = buffer_.stats().observed;
  return out;
}

void OnlineLearner::save_state(BinaryWriter& writer) const {
  MutexLock lock(mutex_);
  shadow_->network().serialize(writer);
  trainer_->serialize_optimizer(writer);
}

void OnlineLearner::load_state(BinaryReader& reader) {
  MutexLock lock(mutex_);
  shadow_->network().deserialize(reader);
  trainer_->deserialize_optimizer(reader);
}

void OnlineLearner::save_checkpoint(const std::string& path) const {
  BinaryWriter writer;
  writer.reserve(1 << 12);
  // One u64 header: version << 32 | magic.
  writer.write_u64(static_cast<std::uint64_t>(kCheckpointVersion) << 32 |
                   kCheckpointMagic);
  save_state(writer);
  // tmp + fsync + rename + parent-dir fsync, with the tmp unlinked on any
  // failure. The old inline rename here neither fsynced the tmp before the
  // rename (a crash soon after could surface an empty checkpoint: the
  // rename journals before the data blocks land) nor cleaned up the tmp
  // when the rename failed.
  storage::durable_write_file(path, writer.bytes().data(),
                              writer.bytes().size());
}

bool OnlineLearner::load_checkpoint(const std::string& path) {
  // A leftover <path>.tmp is a checkpoint whose write was interrupted
  // before the rename — garbage by construction, never to be loaded.
  storage::discard_stale_tmp(path);
  BinaryReader reader({});
  if (!BinaryReader::try_from_file(path, &reader)) {
    return false;  // fresh start — no checkpoint written yet
  }
  const std::uint64_t header = reader.read_u64();
  if (static_cast<std::uint32_t>(header) != kCheckpointMagic) {
    throw std::runtime_error("OnlineLearner: not a checkpoint file: " + path);
  }
  if (const auto v = static_cast<std::uint32_t>(header >> 32);
      v != kCheckpointVersion) {
    throw std::runtime_error("OnlineLearner: unsupported checkpoint version " +
                             std::to_string(v) + ": " + path);
  }
  load_state(reader);
  return true;
}

}  // namespace pp::online
