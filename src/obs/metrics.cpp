#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>

namespace pp::obs {

// ---------------------------------------------------------------------------
// Timing switches.

namespace {

bool env_disabled() {
  // Read once at startup (before threads that would race on the
  // environment). Same pattern and justification as cpu_dispatch.cpp.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("PP_OBS_DISABLED");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

std::uint32_t env_sample_period() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("PP_OBS_SAMPLE_PERIOD");
  if (v == nullptr) return 16;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed >= 1 ? static_cast<std::uint32_t>(parsed) : 1;
}

std::atomic<bool>& timing_flag() {
  static std::atomic<bool> flag{!env_disabled()};
  return flag;
}

std::atomic<std::uint32_t>& period_value() {
  static std::atomic<std::uint32_t> period{env_sample_period()};
  return period;
}

}  // namespace

bool timing_enabled() {
  return timing_flag().load(std::memory_order_relaxed);
}

void set_timing_enabled(bool enabled) {
  timing_flag().store(enabled, std::memory_order_relaxed);
}

std::uint32_t sample_period() {
  return period_value().load(std::memory_order_relaxed);
}

void set_sample_period(std::uint32_t period) {
  period_value().store(period < 1 ? 1 : period, std::memory_order_relaxed);
}

bool sample_tick() {
  if (!timing_enabled()) return false;
  thread_local std::uint32_t tick = 0;
  const std::uint32_t period = sample_period();
  if (++tick >= period) {
    tick = 0;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Counter.

std::size_t Counter::shard_index() {
  // The address of a thread_local object is distinct per thread and stable
  // for the thread's lifetime; fold its cache-line number into a shard.
  thread_local char tag = 0;
  const auto addr = reinterpret_cast<std::uintptr_t>(&tag);
  return static_cast<std::size_t>((addr >> 6) % kShards);
}

// ---------------------------------------------------------------------------
// LatencyHistogram.

std::size_t LatencyHistogram::bucket_index(std::int64_t value) {
  const auto v = static_cast<std::uint64_t>(value < 0 ? 0 : value);
  if (v < static_cast<std::uint64_t>(kSubBuckets)) {
    return static_cast<std::size_t>(v);  // exact, width-1 buckets
  }
  const int exponent = std::bit_width(v) - 1;  // >= kSubBits
  if (exponent >= kMaxExponent) return kBuckets - 1;
  // Top kSubBits bits below the leading bit select the sub-bucket.
  const auto sub =
      static_cast<std::size_t>((v >> (exponent - kSubBits)) - kSubBuckets);
  return static_cast<std::size_t>(exponent - kSubBits) * kSubBuckets + sub +
         kSubBuckets;
}

std::int64_t LatencyHistogram::bucket_upper(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::size_t octave = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  const int exponent = static_cast<int>(octave) + kSubBits;
  // Bucket [lo, hi] where lo = (kSubBuckets + sub) << (exponent - kSubBits).
  const std::uint64_t lo = (static_cast<std::uint64_t>(kSubBuckets) + sub)
                           << (exponent - kSubBits);
  const std::uint64_t width = std::uint64_t{1} << (exponent - kSubBits);
  return static_cast<std::int64_t>(lo + width - 1);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.count += n;
    snap.buckets.emplace_back(bucket_upper(i), n);
  }
  return snap;
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based nearest-rank definition.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (const auto& [upper, n] : buckets) {
    seen += n;
    if (seen >= rank) {
      // Clamp to the observed max so p100 is exact and the top (clamping)
      // bucket cannot over-report.
      return static_cast<double>(std::min(upper, max));
    }
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_key(std::string_view key) {
  if (key.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(key[0])) return false;
  for (char c : key.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::get_or_create(std::string_view name,
                                                       Labels labels,
                                                       MetricKind kind) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs: invalid metric name: " +
                                std::string(name));
  }
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!valid_label_key(labels[i].first)) {
      throw std::invalid_argument("obs: invalid label key: " +
                                  labels[i].first);
    }
    if (i > 0 && labels[i - 1].first == labels[i].first) {
      throw std::invalid_argument("obs: duplicate label key: " +
                                  labels[i].first);
    }
  }

  // Canonical key: name \x1f k \x1e v \x1f k \x1e v ... (separators cannot
  // appear in valid names/keys, and make distinct label sets distinct keys).
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }

  MutexLock lock(mutex_);
  auto [kind_it, kind_inserted] =
      family_kind_.emplace(std::string(name), kind);
  if (!kind_inserted && kind_it->second != kind) {
    throw std::invalid_argument("obs: metric family '" + std::string(name) +
                                "' already registered as " +
                                kind_name(kind_it->second) +
                                ", requested as " + kind_name(kind));
  }
  auto [it, inserted] = entries_.try_emplace(std::move(key));
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.name = std::string(name);
    entry.labels = std::move(labels);
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
  }
  return entry;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return *get_or_create(name, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return *get_or_create(name, std::move(labels), MetricKind::kGauge).gauge;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name,
                                             Labels labels) {
  return *get_or_create(name, std::move(labels), MetricKind::kHistogram)
              .histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    MutexLock lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      MetricSnapshot snap;
      snap.name = entry.name;
      snap.labels = entry.labels;
      snap.kind = entry.kind;
      switch (entry.kind) {
        case MetricKind::kCounter:
          snap.value = static_cast<double>(entry.counter->value());
          break;
        case MetricKind::kGauge:
          snap.value = entry.gauge->value();
          break;
        case MetricKind::kHistogram:
          snap.hist = entry.histogram->snapshot();
          break;
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

// ---------------------------------------------------------------------------
// Timing helpers.

thread_local bool SampledSection::active_ = false;

TraceSpan::TraceSpan(std::initializer_list<LatencyHistogram*> stages,
                     LatencyHistogram* total)
    : sampled_(sample_tick()), section_(sampled_), total_(total) {
  for (LatencyHistogram* stage : stages) {
    if (num_stages_ < kMaxStages) stages_[num_stages_++] = stage;
  }
  if (sampled_) {
    wall_.reset();
    lap_.reset();
  }
}

TraceSpan::~TraceSpan() {
  if (!sampled_) return;
  const std::int64_t wall_ns = wall_.elapsed_ns();
  for (std::size_t i = 0; i < num_stages_; ++i) {
    if (stages_[i] != nullptr) stages_[i]->record(acc_[i]);
  }
  if (total_ != nullptr) total_->record(wall_ns);
}

}  // namespace pp::obs
