#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace pp::obs {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

const char* kind_str(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

// Prometheus label value escaping: backslash, double-quote, newline.
void append_prom_label_value(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

void append_prom_labels(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& labels,
    const char* extra_key = nullptr, const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    append_prom_label_value(out, v);
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += '=';
    append_prom_label_value(out, extra_value);
  }
  out += '}';
}

}  // namespace

std::string render_json(const std::vector<MetricSnapshot>& snapshot) {
  std::string out = "{\n  \"schema\": 1,\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const MetricSnapshot& m = snapshot[i];
    out += "    {\"name\": ";
    append_json_escaped(out, m.name);
    out += ", \"labels\": {";
    for (std::size_t l = 0; l < m.labels.size(); ++l) {
      if (l != 0) out += ", ";
      append_json_escaped(out, m.labels[l].first);
      out += ": ";
      append_json_escaped(out, m.labels[l].second);
    }
    out += "}, \"type\": \"";
    out += kind_str(m.kind);
    out += '"';
    if (m.kind == MetricKind::kHistogram) {
      out += ", \"count\": ";
      append_u64(out, m.hist.count);
      out += ", \"sum\": ";
      append_i64(out, m.hist.sum);
      out += ", \"max\": ";
      append_i64(out, m.hist.max);
      out += ", \"p50\": ";
      append_double(out, m.hist.p50());
      out += ", \"p95\": ";
      append_double(out, m.hist.p95());
      out += ", \"p99\": ";
      append_double(out, m.hist.p99());
      out += ", \"buckets\": [";
      for (std::size_t b = 0; b < m.hist.buckets.size(); ++b) {
        if (b != 0) out += ", ";
        out += '[';
        append_i64(out, m.hist.buckets[b].first);
        out += ", ";
        append_u64(out, m.hist.buckets[b].second);
        out += ']';
      }
      out += ']';
    } else {
      out += ", \"value\": ";
      append_double(out, m.value);
    }
    out += '}';
    if (i + 1 < snapshot.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

std::string render_prometheus(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : snapshot) {
    if (m.name != last_family) {
      // snapshot() is sorted by name, so each family is contiguous and gets
      // exactly one # TYPE header.
      out += "# TYPE ";
      out += m.name;
      out += ' ';
      out += kind_str(m.kind);
      out += '\n';
      last_family = m.name;
    }
    if (m.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (const auto& [upper, n] : m.hist.buckets) {
        cumulative += n;
        out += m.name;
        out += "_bucket";
        std::string le;
        {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%" PRId64, upper);
          le = buf;
        }
        append_prom_labels(out, m.labels, "le", le);
        out += ' ';
        append_u64(out, cumulative);
        out += '\n';
      }
      out += m.name;
      out += "_bucket";
      append_prom_labels(out, m.labels, "le", "+Inf");
      out += ' ';
      append_u64(out, m.hist.count);
      out += '\n';
      out += m.name;
      out += "_sum";
      append_prom_labels(out, m.labels);
      out += ' ';
      append_i64(out, m.hist.sum);
      out += '\n';
      out += m.name;
      out += "_count";
      append_prom_labels(out, m.labels);
      out += ' ';
      append_u64(out, m.hist.count);
      out += '\n';
    } else {
      out += m.name;
      append_prom_labels(out, m.labels);
      out += ' ';
      append_double(out, m.value);
      out += '\n';
    }
  }
  return out;
}

std::string render_json(const MetricsRegistry& registry) {
  return render_json(registry.snapshot());
}

std::string render_prometheus(const MetricsRegistry& registry) {
  return render_prometheus(registry.snapshot());
}

}  // namespace pp::obs
