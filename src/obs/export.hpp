// Renderers for a MetricsRegistry snapshot: a JSON document (machine-read by
// benches/experiments) and Prometheus text exposition format (scrapeable).
// Both render from the same std::vector<MetricSnapshot>, so one end-of-run
// snapshot produces both views atomically.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pp::obs {

/// JSON object: {"schema": 1, "metrics": [...]} where each metric carries
/// name, labels, type, and either value (counter/gauge) or
/// count/sum/max/p50/p95/p99 plus (upper, count) buckets (histogram).
std::string render_json(const std::vector<MetricSnapshot>& snapshot);

/// Prometheus text exposition format, version 0.0.4: one `# TYPE` line per
/// family, cumulative `_bucket{le=...}` series ending in le="+Inf", `_sum`
/// and `_count` for histograms, escaped label values.
std::string render_prometheus(const std::vector<MetricSnapshot>& snapshot);

/// Convenience: snapshot the registry and render.
std::string render_json(const MetricsRegistry& registry);
std::string render_prometheus(const MetricsRegistry& registry);

}  // namespace pp::obs
