#include "obs/stats_bridge.hpp"

#include <string>

#include "online/online_learner.hpp"
#include "online/replay_buffer.hpp"
#include "online/update_daemon.hpp"
#include "serving/kv_store.hpp"
#include "serving/precompute_service.hpp"
#include "serving/stream.hpp"
#include "storage/durable_kv_store.hpp"
#include "storage/segment_log.hpp"

namespace pp::obs {

namespace {

void set_gauge(MetricsRegistry& registry, std::string_view name,
               const BridgeLabels& labels, double value) {
  registry.gauge(name, labels).set(value);
}

double d(std::size_t v) { return static_cast<double>(v); }

}  // namespace

void bridge_kv_stats(MetricsRegistry& registry, const serving::KvStats& stats,
                     const BridgeLabels& labels) {
  set_gauge(registry, "pp_kv_lookups", labels, d(stats.lookups));
  set_gauge(registry, "pp_kv_hits", labels, d(stats.hits));
  set_gauge(registry, "pp_kv_writes", labels, d(stats.writes));
  set_gauge(registry, "pp_kv_deletes", labels, d(stats.deletes));
  set_gauge(registry, "pp_kv_bytes_read", labels, d(stats.bytes_read));
  set_gauge(registry, "pp_kv_bytes_written", labels, d(stats.bytes_written));
}

void bridge_sharded_kv_stats(MetricsRegistry& registry,
                             const serving::ShardedKvStore& store,
                             const BridgeLabels& labels) {
  bridge_kv_stats(registry, store.stats(), labels);
  for (std::size_t shard = 0; shard < store.num_shards(); ++shard) {
    BridgeLabels shard_labels = labels;
    shard_labels.emplace_back("shard", std::to_string(shard));
    bridge_kv_stats(registry, store.shard_stats(shard), shard_labels);
  }
}

void bridge_joiner_stats(MetricsRegistry& registry,
                         const serving::JoinerStats& stats,
                         const BridgeLabels& labels) {
  set_gauge(registry, "pp_joiner_contexts", labels, d(stats.contexts));
  set_gauge(registry, "pp_joiner_accesses", labels, d(stats.accesses));
  set_gauge(registry, "pp_joiner_joined", labels, d(stats.joined));
  set_gauge(registry, "pp_joiner_duplicate_contexts", labels,
            d(stats.duplicate_contexts));
  set_gauge(registry, "pp_joiner_duplicate_accesses", labels,
            d(stats.duplicate_accesses));
  set_gauge(registry, "pp_joiner_orphan_accesses", labels,
            d(stats.orphan_accesses));
  set_gauge(registry, "pp_joiner_orphan_drops", labels, d(stats.orphan_drops));
  set_gauge(registry, "pp_joiner_late_accesses", labels,
            d(stats.late_accesses));
}

void bridge_cost_summary(MetricsRegistry& registry,
                         const serving::ServingCostSummary& summary,
                         const BridgeLabels& labels) {
  set_gauge(registry, "pp_cost_predictions", labels, d(summary.predictions));
  set_gauge(registry, "pp_cost_state_updates", labels,
            d(summary.state_updates));
  set_gauge(registry, "pp_cost_model_flops", labels, d(summary.model_flops));
  set_gauge(registry, "pp_cost_storage_bytes", labels,
            d(summary.storage_bytes));
  set_gauge(registry, "pp_cost_live_keys", labels, d(summary.live_keys));
  bridge_kv_stats(registry, summary.kv, labels);
}

void bridge_learner_stats(MetricsRegistry& registry,
                          const online::OnlineLearnerStats& stats,
                          const BridgeLabels& labels) {
  set_gauge(registry, "pp_online_observed_sessions", labels,
            d(stats.observed_sessions));
  set_gauge(registry, "pp_online_rounds", labels, d(stats.rounds));
  set_gauge(registry, "pp_online_skipped", labels, d(stats.skipped));
  set_gauge(registry, "pp_online_publishes", labels, d(stats.publishes));
  set_gauge(registry, "pp_online_rejects", labels, d(stats.rejects));
  set_gauge(registry, "pp_online_rollbacks", labels, d(stats.rollbacks));
}

void bridge_replay_buffer_stats(MetricsRegistry& registry,
                                const online::ReplayBufferStats& stats,
                                const BridgeLabels& labels) {
  set_gauge(registry, "pp_replay_observed", labels, d(stats.observed));
  set_gauge(registry, "pp_replay_evicted_user_cap", labels,
            d(stats.evicted_user_cap));
  set_gauge(registry, "pp_replay_evicted_capacity", labels,
            d(stats.evicted_capacity));
  set_gauge(registry, "pp_replay_evicted_reservoir", labels,
            d(stats.evicted_reservoir));
  set_gauge(registry, "pp_replay_rejected_reservoir", labels,
            d(stats.rejected_reservoir));
}

void bridge_daemon_stats(MetricsRegistry& registry,
                         const online::OnlineUpdateDaemonStats& stats,
                         const BridgeLabels& labels) {
  set_gauge(registry, "pp_daemon_wakeups", labels, d(stats.wakeups));
  set_gauge(registry, "pp_daemon_rounds_driven", labels,
            d(stats.rounds_driven));
  set_gauge(registry, "pp_daemon_rounds_ran", labels, d(stats.rounds_ran));
  set_gauge(registry, "pp_daemon_round_errors", labels, d(stats.round_errors));
  set_gauge(registry, "pp_daemon_publishes", labels, d(stats.publishes));
  set_gauge(registry, "pp_daemon_rollbacks", labels, d(stats.rollbacks));
  set_gauge(registry, "pp_daemon_deferred_interval", labels,
            d(stats.deferred_interval));
  set_gauge(registry, "pp_daemon_deferred_sessions", labels,
            d(stats.deferred_sessions));
  set_gauge(registry, "pp_daemon_checkpoints", labels, d(stats.checkpoints));
  set_gauge(registry, "pp_daemon_checkpoint_failures", labels,
            d(stats.checkpoint_failures));
}

void bridge_segment_log_stats(MetricsRegistry& registry,
                              const storage::SegmentLogStats& stats,
                              const BridgeLabels& labels) {
  set_gauge(registry, "pp_storage_segments", labels, d(stats.segments));
  set_gauge(registry, "pp_storage_appended_records", labels,
            d(stats.appended_records));
  set_gauge(registry, "pp_storage_recovered_records", labels,
            d(stats.recovered_records));
  set_gauge(registry, "pp_storage_torn_bytes_dropped", labels,
            d(stats.torn_bytes_dropped));
  set_gauge(registry, "pp_storage_crc_rejects", labels, d(stats.crc_rejects));
  set_gauge(registry, "pp_storage_rotations", labels, d(stats.rotations));
  set_gauge(registry, "pp_storage_orphans_removed", labels,
            d(stats.orphans_removed));
}

void bridge_durable_kv_stats(MetricsRegistry& registry,
                             const storage::DurableKvStats& stats,
                             const BridgeLabels& labels) {
  set_gauge(registry, "pp_durable_segments", labels, d(stats.segments));
  set_gauge(registry, "pp_durable_disk_bytes", labels, d(stats.disk_bytes));
  set_gauge(registry, "pp_durable_live_record_bytes", labels,
            d(stats.live_record_bytes));
  set_gauge(registry, "pp_durable_dead_bytes_sealed", labels,
            d(stats.dead_bytes_sealed));
  set_gauge(registry, "pp_durable_dead_bytes_active", labels,
            d(stats.dead_bytes_active));
  set_gauge(registry, "pp_durable_compactions", labels, d(stats.compactions));
  set_gauge(registry, "pp_durable_compacted_bytes_reclaimed", labels,
            d(stats.compacted_bytes_reclaimed));
  set_gauge(registry, "pp_durable_recovered_records", labels,
            d(stats.recovered_records));
  set_gauge(registry, "pp_durable_torn_bytes_dropped", labels,
            d(stats.torn_bytes_dropped));
  set_gauge(registry, "pp_durable_crc_rejects", labels, d(stats.crc_rejects));
  const double disk = d(stats.disk_bytes);
  const double dead = d(stats.dead_bytes_sealed + stats.dead_bytes_active);
  set_gauge(registry, "pp_durable_dead_byte_ratio", labels,
            disk > 0.0 ? dead / disk : 0.0);
}

}  // namespace pp::obs
