// Process-wide metrics layer: typed instruments (Counter / Gauge /
// LatencyHistogram) addressed by name + static label set through a
// MetricsRegistry, plus the timing helpers (ScopedTimer / TraceSpan /
// SampledSection) that instrument the serving hot path as named stages.
//
// Observe-only contract:
//   * Recording NEVER blocks the recorded path: Counter::inc, Gauge::set and
//     LatencyHistogram::record are lock-free (relaxed atomics). The registry
//     mutex is taken only on instrument *creation* (once per name+labels,
//     cached by callers) and on snapshot/export.
//   * Instruments never feed back into decisions — nothing in src/ reads a
//     metric to choose a code path, so the bit-identical replay tests pass
//     unchanged with instrumentation enabled.
//   * Hot-path timing is sampled (1-in-N per thread, PP_OBS_SAMPLE_PERIOD,
//     default 16) and can be disabled entirely (PP_OBS_DISABLED=1); sampling
//     state is thread-local so it cannot perturb cross-thread scheduling.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/stopwatch.hpp"

namespace pp::obs {

// ---------------------------------------------------------------------------
// Global timing switches (read once from the environment, overridable for
// tests/benches).

/// False when PP_OBS_DISABLED=1: every ScopedTimer/TraceSpan disarms and
/// sample_tick() always returns false. Counters/gauges stay live — they are
/// O(1 relaxed add) and the bench overhead budget is about clock reads.
bool timing_enabled();
void set_timing_enabled(bool enabled);

/// 1-in-N per-thread sampling period for hot-path timing (default 16,
/// env PP_OBS_SAMPLE_PERIOD). Period 1 times every call (tests use this).
std::uint32_t sample_period();
void set_sample_period(std::uint32_t period);

/// Advances this thread's sample counter; true on the sampled tick (and
/// always false when !timing_enabled()).
bool sample_tick();

// ---------------------------------------------------------------------------
// Instruments. All are address-stable once created (the registry hands out
// references that stay valid for the registry's lifetime) and safe to use
// from any thread.

/// Monotonic counter, sharded over cache lines so concurrent inc() from many
/// threads doesn't ping-pong one line. Reads are racy-exact: value() sums
/// relaxed loads, exact once writers quiesce.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  // Per-thread shard picked from the address of a thread_local tag —
  // stable per thread, no <thread> dependency (src-lint bans it).
  static std::size_t shard_index();

  Shard shards_[kShards];
};

/// Last-write-wins double value (occupancy, ratios, bridged *Stats fields).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Merged view of one histogram at one instant. Buckets are non-cumulative
/// (upper-bound, count) pairs with zero-count buckets omitted.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;
  std::vector<std::pair<std::int64_t, std::uint64_t>> buckets;

  /// Upper bound of the bucket holding the rank-q sample, clamped to the
  /// observed max: for a recorded value v at that rank,
  /// v <= percentile(q) <= v * (1 + 2^-kSubBits) (+1 ns rounding).
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Fixed-size log-bucketed histogram of non-negative int64 values
/// (nanoseconds by convention; any magnitude works). record() is wait-free —
/// one relaxed fetch_add into the bucket, one into the sum, a relaxed CAS
/// loop for the max. Buckets: exact below 2^kSubBits, then 2^kSubBits
/// sub-buckets per octave, so relative bucket width (and thus worst-case
/// percentile error) is bounded by 2^-kSubBits = 12.5%. 320 buckets cover
/// [0, 2^42) ns ≈ 1.2 hours; larger values clamp into the last bucket.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 8 per octave
  static constexpr int kMaxExponent = 42;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>((kMaxExponent - kSubBits) * kSubBuckets) +
      kSubBuckets;  // 320

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(std::int64_t value) {
    if (value < 0) value = 0;
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const;

  /// Bucket for a value; inclusive upper bound of a bucket. Exposed for the
  /// correctness tests and the cumulative-bucket exporter.
  static std::size_t bucket_index(std::int64_t value);
  static std::int64_t bucket_upper(std::size_t index);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};
};

// ---------------------------------------------------------------------------
// Registry.

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricSnapshot {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // sorted by key
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;       // counter / gauge
  HistogramSnapshot hist;   // histogram
};

/// Name + label-set → instrument. Lookup takes the registry mutex, so
/// callers on hot paths resolve their instruments ONCE (constructor or
/// function-local static) and keep the reference; the reference stays valid
/// for the registry's lifetime (instruments are heap-allocated, the map only
/// stores owning pointers).
///
/// Names must match [a-zA-Z_:][a-zA-Z0-9_:]* and label keys
/// [a-zA-Z_][a-zA-Z0-9_]* (Prometheus rules). One name = one kind: asking
/// for the same family with a different instrument kind throws.
class MetricsRegistry {
 public:
  /// Label set, e.g. {{"stage", "kv_get"}, {"precision", "f32"}}. Stored
  /// sorted by key; order in the argument doesn't matter.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  LatencyHistogram& histogram(std::string_view name, Labels labels = {});

  /// Point-in-time copy of every instrument, sorted by (name, labels) so
  /// exporters emit families contiguously.
  std::vector<MetricSnapshot> snapshot() const PP_EXCLUDES(mutex_);

  std::size_t size() const PP_EXCLUDES(mutex_);

  /// The process-wide registry every instrumented subsystem uses.
  /// Function-local static: constructed on first use, destroyed after the
  /// (later-constructed) objects that cached references into it.
  static MetricsRegistry& global();

 private:
  struct Entry {
    MetricKind kind;
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& get_or_create(std::string_view name, Labels labels, MetricKind kind)
      PP_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::unordered_map<std::string, Entry> entries_ PP_GUARDED_BY(mutex_);
  std::unordered_map<std::string, MetricKind> family_kind_
      PP_GUARDED_BY(mutex_);
};

// ---------------------------------------------------------------------------
// Timing helpers.

/// Thread-local flag marking "this call tree is the sampled one", so nested
/// instrumentation sites (e.g. RnnModel under RnnPolicy) time exactly the
/// batches the outer TraceSpan timed — stages stay mutually consistent.
class SampledSection {
 public:
  explicit SampledSection(bool sampled) : prev_(active_) { active_ = sampled; }
  ~SampledSection() { active_ = prev_; }
  SampledSection(const SampledSection&) = delete;
  SampledSection& operator=(const SampledSection&) = delete;

  static bool active() { return active_; }

 private:
  static thread_local bool active_;
  bool prev_;
};

/// Records elapsed ns into a histogram at scope exit. Pass nullptr (or run
/// with timing disabled) to disarm — a disarmed timer never reads the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(timing_enabled() ? hist : nullptr),
        watch_(Stopwatch::Unstarted{}) {
    if (hist_ != nullptr) watch_.reset();
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->record(watch_.elapsed_ns());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  Stopwatch watch_;
};

/// Multi-stage span for one batch: decides sampling once (sample_tick),
/// publishes it via SampledSection, and accumulates per-stage lap times that
/// tile the wall exactly (lap_ns: consecutive laps share one clock read).
/// At destruction, records each stage's accumulated ns into its histogram
/// and the total wall into `total`. Unsampled spans cost one branch per
/// stage_*() call and zero clock reads.
class TraceSpan {
 public:
  static constexpr std::size_t kMaxStages = 8;

  TraceSpan(std::initializer_list<LatencyHistogram*> stages,
            LatencyHistogram* total);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool sampled() const { return sampled_; }

  /// Marks the start of a stage run (resets the lap clock).
  void stage_begin() {
    if (sampled_) lap_.reset();
  }
  /// Credits the time since the last stage_begin()/stage_add() to stage
  /// `slot` (index into the constructor list) and continues the lap.
  void stage_add(std::size_t slot) {
    if (sampled_) acc_[slot] += lap_.lap_ns();
  }

 private:
  bool sampled_;
  SampledSection section_;
  std::size_t num_stages_ = 0;
  LatencyHistogram* stages_[kMaxStages] = {};
  std::int64_t acc_[kMaxStages] = {};
  LatencyHistogram* total_;
  Stopwatch wall_{Stopwatch::Unstarted{}};
  Stopwatch lap_{Stopwatch::Unstarted{}};
};

}  // namespace pp::obs
