// Bridges the existing ad-hoc *Stats structs into the MetricsRegistry as
// gauge snapshots, so one end-of-run export carries both the new latency
// histograms and the legacy counters without deleting any *Stats API.
//
// Bridging is an explicit call at export time (not a registry hook): the
// *Stats owners keep their lifetimes, and the bridge copies current values
// into gauges named pp_<layer>_<struct>_<field> under the caller's labels.
#pragma once

#include <cstddef>
#include <string_view>

#include "obs/metrics.hpp"

namespace pp::online {
struct OnlineLearnerStats;
struct OnlineUpdateDaemonStats;
struct ReplayBufferStats;
}  // namespace pp::online

namespace pp::serving {
struct KvStats;
struct JoinerStats;
struct ServingCostSummary;
class ShardedKvStore;
}  // namespace pp::serving

namespace pp::storage {
struct SegmentLogStats;
struct DurableKvStats;
}  // namespace pp::storage

namespace pp::obs {

/// Labels common to one bridge call, e.g. {{"policy","rnn"},{"arm","online"}}.
using BridgeLabels = MetricsRegistry::Labels;

void bridge_kv_stats(MetricsRegistry& registry,
                     const serving::KvStats& stats,
                     const BridgeLabels& labels = {});

/// Per-shard KvStats gauges labeled shard="0".."N-1" plus the aggregate.
void bridge_sharded_kv_stats(MetricsRegistry& registry,
                             const serving::ShardedKvStore& store,
                             const BridgeLabels& labels = {});

void bridge_joiner_stats(MetricsRegistry& registry,
                         const serving::JoinerStats& stats,
                         const BridgeLabels& labels = {});

void bridge_cost_summary(MetricsRegistry& registry,
                         const serving::ServingCostSummary& summary,
                         const BridgeLabels& labels = {});

void bridge_learner_stats(MetricsRegistry& registry,
                          const online::OnlineLearnerStats& stats,
                          const BridgeLabels& labels = {});

void bridge_replay_buffer_stats(MetricsRegistry& registry,
                                const online::ReplayBufferStats& stats,
                                const BridgeLabels& labels = {});

void bridge_daemon_stats(MetricsRegistry& registry,
                         const online::OnlineUpdateDaemonStats& stats,
                         const BridgeLabels& labels = {});

void bridge_segment_log_stats(MetricsRegistry& registry,
                              const storage::SegmentLogStats& stats,
                              const BridgeLabels& labels = {});

void bridge_durable_kv_stats(MetricsRegistry& registry,
                             const storage::DurableKvStats& stats,
                             const BridgeLabels& labels = {});

}  // namespace pp::obs
