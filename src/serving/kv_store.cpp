#include "serving/kv_store.hpp"

#include <functional>

namespace pp::serving {

// ------------------------------------------------------------ LocalKvStore

std::optional<std::vector<std::uint8_t>> LocalKvStore::get(
    const std::string& key) {
  MutexLock lock(mutex_);
  ++stats_.lookups;
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  stats_.bytes_read += it->second.size();
  return it->second;
}

void LocalKvStore::put(const std::string& key,
                       std::vector<std::uint8_t> value) {
  MutexLock lock(mutex_);
  ++stats_.writes;
  stats_.bytes_written += value.size();
  auto [it, inserted] = map_.try_emplace(key);
  if (!inserted) value_bytes_ -= it->second.size();
  value_bytes_ += value.size();
  it->second = std::move(value);
}

bool LocalKvStore::erase(const std::string& key) {
  MutexLock lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  ++stats_.deletes;
  value_bytes_ -= it->second.size();
  map_.erase(it);
  return true;
}

bool LocalKvStore::contains(const std::string& key) const {
  MutexLock lock(mutex_);
  return map_.count(key) > 0;
}

std::size_t LocalKvStore::size() const {
  MutexLock lock(mutex_);
  return map_.size();
}

std::size_t LocalKvStore::value_bytes() const {
  MutexLock lock(mutex_);
  return value_bytes_;
}

KvStats LocalKvStore::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void LocalKvStore::reset_stats() {
  MutexLock lock(mutex_);
  stats_ = KvStats{};
}

// ---------------------------------------------------------- ShardedKvStore

ShardedKvStore::ShardedKvStore(std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<LocalKvStore>());
  }
}

std::size_t ShardedKvStore::shard_index(const std::string& key) const {
  return std::hash<std::string>{}(key) % shards_.size();
}

LocalKvStore& ShardedKvStore::shard_for(const std::string& key) {
  return *shards_[shard_index(key)];
}

const LocalKvStore& ShardedKvStore::shard_for(const std::string& key) const {
  return *shards_[shard_index(key)];
}

std::optional<std::vector<std::uint8_t>> ShardedKvStore::get(
    const std::string& key) {
  return shard_for(key).get(key);
}

void ShardedKvStore::put(const std::string& key,
                         std::vector<std::uint8_t> value) {
  shard_for(key).put(key, std::move(value));
}

bool ShardedKvStore::erase(const std::string& key) {
  return shard_for(key).erase(key);
}

bool ShardedKvStore::contains(const std::string& key) const {
  return shard_for(key).contains(key);
}

std::size_t ShardedKvStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::size_t ShardedKvStore::value_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->value_bytes();
  return total;
}

KvStats ShardedKvStore::stats() const {
  KvStats merged;
  for (const auto& shard : shards_) merged += shard->stats();
  return merged;
}

void ShardedKvStore::reset_stats() {
  for (const auto& shard : shards_) shard->reset_stats();
}

KvStats ShardedKvStore::shard_stats(std::size_t shard) const {
  return shards_[shard]->stats();
}

}  // namespace pp::serving
