#include "serving/kv_store.hpp"

namespace pp::serving {

std::optional<std::vector<std::uint8_t>> KvStore::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  stats_.bytes_read += it->second.size();
  return it->second;
}

void KvStore::put(const std::string& key, std::vector<std::uint8_t> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writes;
  stats_.bytes_written += value.size();
  auto [it, inserted] = map_.try_emplace(key);
  if (!inserted) value_bytes_ -= it->second.size();
  value_bytes_ += value.size();
  it->second = std::move(value);
}

bool KvStore::erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  ++stats_.deletes;
  value_bytes_ -= it->second.size();
  map_.erase(it);
  return true;
}

bool KvStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.count(key) > 0;
}

std::size_t KvStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::size_t KvStore::value_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return value_bytes_;
}

KvStats KvStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void KvStore::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = KvStats{};
}

}  // namespace pp::serving
