// The production serving loop of §9: at session start the policy scores
// the user (RNN: one hidden-state lookup + MLP; GBDT: ~20 aggregation
// lookups + tree walk), the service triggers precompute when the score
// clears the threshold, and when the session's window closes the stream
// joiner delivers the completed (context, access) record back to the
// policy to update its per-user state.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "models/gbdt_model.hpp"
#include "models/rnn_model.hpp"
#include "online/model_registry.hpp"
#include "serving/aggregation_service.hpp"
#include "serving/hidden_store.hpp"
#include "serving/stream.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace pp::obs {
class Counter;
class LatencyHistogram;
}  // namespace pp::obs

namespace pp::serving {

/// Cost ledger for one serving policy (the §9 comparison).
struct ServingCostSummary {
  std::size_t predictions = 0;
  std::size_t state_updates = 0;
  std::size_t model_flops = 0;  // multiply-accumulates in model evaluation
  KvStats kv;
  std::size_t storage_bytes = 0;
  std::size_t live_keys = 0;

  double lookups_per_prediction() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(kv.lookups) /
                                  static_cast<double>(predictions);
  }
  double flops_per_prediction() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(model_flops) /
                                  static_cast<double>(predictions);
  }
};

/// One session-start event, the unit of the batched scoring entry point.
struct SessionStart {
  std::uint64_t session_id = 0;
  std::uint64_t user_id = 0;
  std::int64_t t = 0;
  std::array<std::uint32_t, data::kMaxContextFields> context{};
};

class PrecomputePolicy {
 public:
  virtual ~PrecomputePolicy() = default;
  /// Access-probability estimate at session start.
  virtual double score_session(std::uint64_t user_id, std::int64_t t,
                               std::span<const std::uint32_t> context) = 0;
  /// Batched session-start scoring against one state snapshot. The default
  /// loops score_session; policies with a batchable model override it to
  /// amortize one GEMM across the cohort. Element i must equal the
  /// corresponding score_session call (same scores, same cost counters).
  virtual std::vector<double> score_sessions(
      std::span<const SessionStart> sessions);
  /// Completed-session callback from the stream joiner.
  virtual void on_session_complete(const JoinedSession& joined) = 0;
  /// Called by the service — under its mutex, never concurrently with
  /// scoring — at every point a model hot-swap may be observed: before
  /// each single session start and before each batch snapshot group.
  /// Registry-backed policies re-pin their model snapshot here, so one
  /// snapshot group is always scored (and its timer-driven completions
  /// applied) by exactly one model version. Default: no-op.
  ///
  /// The "under its mutex, never concurrently with scoring" contract is a
  /// compile-checked capability, not a comment: callers must hold
  /// serial_token() (a zero-cost pp::SerialToken), which the service
  /// claims with a SerialSection wherever it already holds its mutex.
  /// Direct callers (tests, single-threaded drivers) claim it the same
  /// way, making every call site of the contract grep-able.
  virtual void begin_batch() PP_REQUIRES(serial_) {}
  /// The capability naming the begin-batch serialization contract.
  const SerialToken& serial_token() const PP_RETURN_CAPABILITY(serial_) {
    return serial_;
  }
  /// Whether score_sessions / on_session_complete tolerate concurrent
  /// callers. The threaded service driver only fans out over policies
  /// that opt in; everything else is scored on the calling thread.
  virtual bool concurrent_safe() const { return false; }
  virtual ServingCostSummary cost_summary() const = 0;
  virtual const char* name() const = 0;

 protected:
  /// See begin_batch(). Protected so overrides can restate the
  /// requirement (thread-safety attributes are not inherited).
  SerialToken serial_;
};

/// Numeric mode of the RNN serving path. kInt8 scores directly on the
/// stored single-byte hidden states (§9): the KV bytes feed the quantized
/// GRU update and the batched int8 RNNpredict head with no f32 decode of
/// the state and no f32 weight matrix at serve time.
enum class ScorePrecision { kFloat32, kInt8 };

/// RNN serving (§9): hidden state + t_k in the KV store; TorchScript-like
/// split execution — MLP at session start, GRU at session end.
///
/// Thread-safe: score_sessions / on_session_complete may be called from
/// concurrent serving workers. Per-user state access is serialized through
/// striped locks keyed by user_id (the Graves-style ordering constraint:
/// each user's recurrent state update is strictly ordered, everything else
/// fans out), and the cost counters are atomics.
///
/// kInt8 requires a kInt8-codec store and a model with
/// enable_quantized_serving() already called (throws otherwise). The int8
/// mode keeps every batching/threading invariant of the f32 path: per-row
/// activation quantization plus exact integer accumulation make batched,
/// single, and thread-partitioned scoring bit-identical.
class RnnPolicy final : public PrecomputePolicy {
 public:
  RnnPolicy(const models::RnnModel& model, HiddenStateStore& store,
            ScorePrecision precision = ScorePrecision::kFloat32);
  /// Registry-backed (hot-swappable) policy: the model is re-resolved from
  /// the registry at every begin_batch() and pinned until the next one, so
  /// scoring/completions between two begin_batch() calls always use one
  /// version. kInt8 additionally requires the registry to rebuild int8
  /// replicas on publish (so no published version can ever lack them).
  RnnPolicy(const online::ModelRegistry& registry, HiddenStateStore& store,
            ScorePrecision precision = ScorePrecision::kFloat32);

  double score_session(std::uint64_t user_id, std::int64_t t,
                       std::span<const std::uint32_t> context) override;
  /// Batched variant: B hidden-state lookups feed one [B x d] RNNpredict
  /// GEMM instead of B gemv calls. Scores and cost counters match B
  /// score_session calls exactly.
  std::vector<double> score_sessions(
      std::span<const SessionStart> sessions) override;
  void on_session_complete(const JoinedSession& joined) override;
  void begin_batch() override PP_REQUIRES(serial_);
  bool concurrent_safe() const override { return true; }
  ServingCostSummary cost_summary() const override;
  const char* name() const override {
    return precision_ == ScorePrecision::kInt8 ? "rnn-int8" : "rnn";
  }
  ScorePrecision precision() const { return precision_; }
  /// Version pinned by the last begin_batch() (0 for a fixed model).
  /// Reads the pin itself, so like begin_batch() it may only run
  /// serialized against re-pinning — callers hold serial_token().
  std::uint64_t model_version() const PP_REQUIRES(serial_) {
    return active_ ? active_->version : 0;
  }

 private:
  /// Resolves user_id to its stripe. PP_RETURN_CAPABILITY tells the
  /// analysis which array element a MutexLock at the call site actually
  /// acquires, so two different stripes are never conflated.
  Mutex& stripe_for(std::uint64_t user_id)
      PP_RETURN_CAPABILITY(stripes_[user_id % kLockStripes]) {
    return stripes_[user_id % kLockStripes];
  }
  /// The model every score/update in the current pin window uses. Fixed
  /// model or the pinned registry snapshot. Deliberately NOT guarded by
  /// serial_: scoring workers read the pin concurrently with each other,
  /// which is safe because the service only re-pins (begin_batch, under
  /// serial_) while no scoring is in flight — writes and reads are
  /// separated in time by the group structure, not by a lock.
  const models::RnnModel& model() const {
    return registry_ != nullptr ? *active_->model : *model_;
  }

  static constexpr std::size_t kLockStripes = 64;

  /// Resolves the policy's obs instruments once (registry lookups happen
  /// here, never on the scoring path). Observe-only: these record latency
  /// distributions, nothing reads them back into a decision.
  void init_obs();

  const models::RnnModel* model_;
  const online::ModelRegistry* registry_ = nullptr;
  std::shared_ptr<const online::ModelVersion> active_;
  HiddenStateStore* store_;
  ScorePrecision precision_;
  features::LogBucketizer bucketizer_;
  /// Striped per-user locks: one stripe serializes the read-modify-write
  /// of every user hashing to it; different stripes never contend.
  std::array<Mutex, kLockStripes> stripes_;
  std::atomic<std::size_t> predictions_{0};
  std::atomic<std::size_t> state_updates_{0};
  std::atomic<std::size_t> model_flops_{0};
  // Per-stage latency histograms (sampled; see obs::TraceSpan). Raw
  // pointers into the process-global MetricsRegistry, valid for the
  // process lifetime.
  obs::LatencyHistogram* obs_kv_get_ = nullptr;
  obs::LatencyHistogram* obs_encode_ = nullptr;
  obs::LatencyHistogram* obs_gru_ = nullptr;
  obs::LatencyHistogram* obs_batch_wall_ = nullptr;
  obs::LatencyHistogram* obs_batch_sessions_ = nullptr;
};

/// GBDT serving (§9): aggregation features from the stream-maintained
/// KV counters, then a tree-ensemble walk.
class GbdtPolicy final : public PrecomputePolicy {
 public:
  GbdtPolicy(const models::GbdtModel& model,
             const features::FeaturePipeline& pipeline,
             AggregationService& aggregation);

  double score_session(std::uint64_t user_id, std::int64_t t,
                       std::span<const std::uint32_t> context) override;
  void on_session_complete(const JoinedSession& joined) override;
  ServingCostSummary cost_summary() const override;
  const char* name() const override { return "gbdt"; }

 private:
  const models::GbdtModel* model_;
  const features::FeaturePipeline* pipeline_;
  AggregationService* aggregation_;
  features::SparseRow row_;
  std::vector<float> dense_;
  ServingCostSummary costs_;
};

/// Per-day online quality series (Figure 7) plus prefetch accounting.
class OnlineMetrics {
 public:
  OnlineMetrics(std::int64_t start_time) : start_time_(start_time) {}

  void record(std::int64_t t, double score, bool prefetched, bool access);

  std::size_t days() const { return daily_scores_.size(); }
  /// PR-AUC of one day's predictions (NaN-free: returns 0 when a day has
  /// no positives).
  double daily_pr_auc(std::size_t day) const;
  std::vector<double> daily_pr_auc_series() const;

  std::size_t predictions() const { return total_predictions_; }
  std::size_t prefetches() const { return total_prefetches_; }
  std::size_t successful_prefetches() const { return successful_; }
  std::size_t accesses() const { return total_accesses_; }
  /// Fraction of prefetches that were followed by an access.
  double precision() const;
  /// Fraction of accesses that had been prefetched.
  double recall() const;

 private:
  std::int64_t start_time_;
  std::vector<std::vector<double>> daily_scores_;
  std::vector<std::vector<float>> daily_labels_;
  std::size_t total_predictions_ = 0;
  std::size_t total_prefetches_ = 0;
  std::size_t successful_ = 0;
  std::size_t total_accesses_ = 0;
};

/// Ties one policy to the stream joiner, a trigger threshold, and metrics.
class PrecomputeService {
 public:
  PrecomputeService(PrecomputePolicy& policy, double threshold,
                    std::int64_t session_length, std::int64_t grace,
                    std::int64_t metrics_start);

  /// Session start: scores, decides, and feeds the context event into the
  /// joiner. Returns the decision.
  bool on_session_start(std::uint64_t session_id, std::uint64_t user_id,
                        std::int64_t t,
                        const std::array<std::uint32_t,
                                         data::kMaxContextFields>& context);
  /// Batched session starts. The batch is processed in non-decreasing
  /// timestamp order (stable within a timestamp) and cut into groups at
  /// every point a joiner timer could fire: a group extends while the
  /// next session's t is strictly before both the earliest pending timer
  /// and the earliest timer the group itself registers (first t + window
  /// + grace). Within a group no state change can occur, so scoring it
  /// against one snapshot equals the sequential replay of the time-sorted
  /// batch — no mid-batch timer drift. Decisions return in input order.
  std::vector<bool> on_session_starts(std::span<const SessionStart> sessions);
  /// Multi-threaded variant: each group is partitioned across the pool's
  /// workers user-affinely (user_id picks the worker), so any user's
  /// hidden state is touched by exactly one worker and scores are
  /// bit-identical to the sequential batched path. Requires a policy with
  /// concurrent_safe() (otherwise scores inline). The joiner stays
  /// single-writer: all timer fires and context feeds happen on the
  /// calling thread under the service mutex.
  std::vector<bool> on_session_starts(std::span<const SessionStart> sessions,
                                      ThreadPool& pool);
  void on_access(std::uint64_t session_id, std::int64_t t);
  void advance_to(std::int64_t t);
  void flush();

  /// Joiner→learner feed: `listener` receives every joined session right
  /// after the policy's state update, under the service mutex (keep it
  /// cheap — e.g. OnlineLearner::observe, which just appends to the replay
  /// buffer). Pass nullptr to detach.
  void set_completion_listener(
      std::function<void(const JoinedSession&)> listener);

  /// Snapshots (copies) taken under the service mutex: safe to call from
  /// a monitoring thread while drivers are mid-batch.
  OnlineMetrics metrics() const {
    MutexLock guard(mutex_);
    return metrics_;
  }
  JoinerStats joiner_stats() const {
    MutexLock guard(mutex_);
    return joiner_.stats();
  }
  PrecomputePolicy& policy() { return *policy_; }
  double threshold() const { return threshold_; }

 private:
  struct PendingScore {
    double score = 0;
    bool prefetched = false;
  };

  std::vector<bool> run_session_starts(std::span<const SessionStart> sessions,
                                       ThreadPool* pool) PP_EXCLUDES(mutex_);
  /// Scores sessions[order[begin..end)] (one timestamp group), returning
  /// scores aligned with that order slice; fans out across `pool` when
  /// given one. Runs under the service mutex (the caller's batch loop);
  /// worker threads it fans out to touch only policy state, never the
  /// mutex_-guarded event stream.
  std::vector<double> score_group(std::span<const SessionStart> sessions,
                                  std::span<const std::size_t> order,
                                  ThreadPool* pool) PP_REQUIRES(mutex_);
  /// Joiner completion callback body: metrics/pending bookkeeping, the
  /// policy state update, then the listener feed. Only reachable from
  /// joiner_ calls, which all happen under mutex_.
  void handle_joined(const JoinedSession& joined) PP_REQUIRES(mutex_);

  PrecomputePolicy* policy_;
  double threshold_;
  // Decision/joiner-stage instrumentation (observe-only; resolved once in
  // the constructor, labeled by policy name).
  obs::LatencyHistogram* obs_decision_ns_ = nullptr;
  obs::Counter* obs_prefetches_ = nullptr;
  obs::Counter* obs_skips_ = nullptr;
  /// window + grace: the minimum delay between a context event and its
  /// join timer, i.e. the scoring-snapshot horizon of one batch group.
  std::int64_t horizon_;
  /// Single-writer guard for the joiner / pending-score / metrics state;
  /// scoring itself fans out, but event-stream mutation never does.
  mutable Mutex mutex_;
  SessionJoiner joiner_ PP_GUARDED_BY(mutex_);
  OnlineMetrics metrics_ PP_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, PendingScore> pending_
      PP_GUARDED_BY(mutex_);
  std::function<void(const JoinedSession&)> completion_listener_
      PP_GUARDED_BY(mutex_);
};

}  // namespace pp::serving
