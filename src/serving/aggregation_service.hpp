// The aggregation-feature serving pipeline the GBDT baseline needs in
// production (§9): "aggregations are computed using a stream processing
// service in combination with a key-value store. However, we still need to
// keep track of every combination of context values in order to serve
// context-dependent aggregations, which may result in thousands of unique
// keys per user. For example, MobileTab requires about 20 aggregation
// feature lookups for every individual prediction."
//
// Semantics are provided by the exact per-user sliding-window aggregator;
// every feature read and every counter update is mirrored through the
// KvStore so its instrumentation reflects the real key/lookup/byte volume
// of serving this feature family.
#pragma once

#include <memory>
#include <unordered_map>

#include "features/pipeline.hpp"
#include "serving/kv_store.hpp"

namespace pp::serving {

class AggregationService {
 public:
  AggregationService(const features::FeaturePipeline& pipeline,
                     KvStore& store);

  /// Serves the model-ready feature row for a prediction, issuing one KV
  /// lookup per (window x subset) counter and per last-seen key — the ~20
  /// lookups per prediction of §9.
  void serve_features(std::uint64_t user_id, std::int64_t t,
                      std::span<const std::uint32_t> context,
                      features::SparseRow& out);

  /// Applies a completed session (from the stream joiner), writing the
  /// touched counter cells back to the KV store.
  void apply_session(std::uint64_t user_id, const data::Session& session);

  /// Live counter keys for one user ("thousands of unique keys per user").
  std::size_t live_keys(std::uint64_t user_id) const;
  std::size_t total_live_keys() const;
  /// Rough per-user storage bytes (16 B per counter cell key).
  std::size_t storage_bytes() const;

  std::size_t lookups_per_prediction() const;

  KvStats kv_stats() const;

 private:
  features::UserAggregator& aggregator_for(std::uint64_t user_id);

  const features::FeaturePipeline* pipeline_;
  KvStore* store_;
  std::unordered_map<std::uint64_t, std::unique_ptr<features::UserAggregator>>
      aggregators_;
  features::AggregateSnapshot snapshot_;
};

}  // namespace pp::serving
