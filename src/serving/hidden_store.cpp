#include "serving/hidden_store.hpp"

#include <algorithm>
#include <cmath>

#include "util/serialize.hpp"

namespace pp::serving {

namespace {

void encode_matrix(const tensor::Matrix& m, StateCodec codec,
                   BinaryWriter& writer) {
  writer.write_u32(static_cast<std::uint32_t>(m.rows()));
  writer.write_u32(static_cast<std::uint32_t>(m.cols()));
  if (codec == StateCodec::kFloat32) {
    for (std::size_t i = 0; i < m.size(); ++i) writer.write_f32(m[i]);
    return;
  }
  // int8 per-tensor affine: v ≈ scale * q with q in [-127, 127].
  // Non-finite inputs need sanitizing: an Inf would poison the scale for
  // every other element, and casting a NaN to int8 (clamp passes NaN
  // through) is undefined behavior. The scale therefore comes from the
  // finite entries only; NaN encodes as 0 and ±Inf saturates to ±127.
  float max_abs = 0.0f;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (std::isfinite(m[i])) max_abs = std::max(max_abs, std::abs(m[i]));
  }
  const float scale = max_abs > 0 ? max_abs / 127.0f : 1.0f;
  writer.write_f32(scale);
  for (std::size_t i = 0; i < m.size(); ++i) {
    float q = 0.0f;
    if (!std::isnan(m[i])) {
      q = std::clamp(std::round(m[i] / scale), -127.0f, 127.0f);
    }
    writer.write_pod(static_cast<std::int8_t>(q));
  }
}

tensor::Matrix decode_matrix(StateCodec codec, BinaryReader& reader) {
  const std::uint32_t rows = reader.read_u32();
  const std::uint32_t cols = reader.read_u32();
  tensor::Matrix m(rows, cols);
  if (codec == StateCodec::kFloat32) {
    for (std::size_t i = 0; i < m.size(); ++i) m[i] = reader.read_f32();
    return m;
  }
  const float scale = reader.read_f32();
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = scale * static_cast<float>(reader.read_pod<std::int8_t>());
  }
  return m;
}

}  // namespace

std::string HiddenStateStore::key(std::uint64_t user_id) const {
  return "h:" + std::to_string(user_id);
}

void HiddenStateStore::put(std::uint64_t user_id, const StoredState& state) {
  BinaryWriter writer;
  writer.write_i64(state.last_update_time);
  writer.write_u32(state.updates);
  writer.write_u32(static_cast<std::uint32_t>(state.state.layers.size()));
  for (const auto& layer : state.state.layers) {
    writer.write_u32(static_cast<std::uint32_t>(layer.size()));
    for (const auto& part : layer) encode_matrix(part, codec_, writer);
  }
  store_->put(key(user_id), writer.take());
}

std::optional<StoredState> HiddenStateStore::get(
    std::uint64_t user_id, const train::RnnNetwork& network) const {
  auto bytes = store_->get(key(user_id));
  if (!bytes.has_value()) return std::nullopt;
  BinaryReader reader(std::move(*bytes));
  StoredState state;
  state.last_update_time = reader.read_i64();
  state.updates = reader.read_u32();
  const std::uint32_t layers = reader.read_u32();
  state.state.layers.resize(layers);
  for (std::uint32_t l = 0; l < layers; ++l) {
    const std::uint32_t parts = reader.read_u32();
    state.state.layers[l].reserve(parts);
    for (std::uint32_t p = 0; p < parts; ++p) {
      state.state.layers[l].push_back(decode_matrix(codec_, reader));
    }
  }
  (void)network;
  return state;
}

std::size_t HiddenStateStore::encoded_bytes(
    const train::RnnNetwork& network) const {
  const auto& cfg = network.config();
  const std::size_t parts = cfg.cell == nn::CellType::kLstm ? 2 : 1;
  const std::size_t per_value = codec_ == StateCodec::kFloat32 ? 4 : 1;
  const std::size_t header = 8 + 4 + 4;
  const std::size_t per_matrix =
      8 + (codec_ == StateCodec::kInt8 ? 4 : 0) + cfg.hidden_size * per_value;
  return header +
         static_cast<std::size_t>(cfg.num_layers) * (4 + parts * per_matrix);
}

}  // namespace pp::serving
