#include "serving/hidden_store.hpp"

#include <stdexcept>

#include "tensor/qgemm.hpp"
#include "util/serialize.hpp"

namespace pp::serving {

namespace {

void encode_matrix(const tensor::Matrix& m, StateCodec codec,
                   BinaryWriter& writer) {
  writer.write_u32(static_cast<std::uint32_t>(m.rows()));
  writer.write_u32(static_cast<std::uint32_t>(m.cols()));
  if (codec == StateCodec::kFloat32) {
    writer.write_bytes(m.data(), m.size() * sizeof(float));
    return;
  }
  // int8 per-tensor affine: v ≈ scale * q with q in [-127, 127]. The
  // sanitization rules (scale from finite entries only, NaN -> 0, ±Inf
  // saturates, denormal-scale clamp) live in QuantizedMatrix::quantize —
  // the single source of truth shared with the quantized scoring path.
  const tensor::QuantizedMatrix q = tensor::QuantizedMatrix::quantize(m);
  writer.write_f32(q.scale());
  writer.write_bytes(q.data(), q.size());
}

tensor::Matrix decode_matrix(StateCodec codec, BinaryReader& reader) {
  const std::uint32_t rows = reader.read_u32();
  const std::uint32_t cols = reader.read_u32();
  tensor::Matrix m(rows, cols);
  if (codec == StateCodec::kFloat32) {
    reader.read_bytes(m.data(), m.size() * sizeof(float));
    return m;
  }
  const float scale = reader.read_f32();
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = scale * static_cast<float>(reader.read_pod<std::int8_t>());
  }
  return m;
}

}  // namespace

std::string HiddenStateStore::key(std::uint64_t user_id) const {
  return "h:" + std::to_string(user_id);
}

void HiddenStateStore::put(std::uint64_t user_id, const StoredState& state) {
  BinaryWriter writer;
  writer.write_i64(state.last_update_time);
  writer.write_u32(state.updates);
  writer.write_u32(static_cast<std::uint32_t>(state.state.layers.size()));
  for (const auto& layer : state.state.layers) {
    writer.write_u32(static_cast<std::uint32_t>(layer.size()));
    for (const auto& part : layer) encode_matrix(part, codec_, writer);
  }
  store_->put(key(user_id), writer.take());
}

std::optional<StoredState> HiddenStateStore::get(
    std::uint64_t user_id, const train::RnnNetwork& network) const {
  auto bytes = store_->get(key(user_id));
  if (!bytes.has_value()) return std::nullopt;
  BinaryReader reader(std::move(*bytes));
  StoredState state;
  state.last_update_time = reader.read_i64();
  state.updates = reader.read_u32();
  const std::uint32_t layers = reader.read_u32();
  // Serving memcpys hidden_size values straight out of the returned
  // state, so a record written by a differently-sized model must fail
  // loudly here rather than feed an out-of-bounds read downstream.
  const auto& cfg = network.config();
  if (layers != static_cast<std::uint32_t>(cfg.num_layers)) {
    throw std::runtime_error("get: stored layer count mismatches model");
  }
  state.state.layers.resize(layers);
  for (std::uint32_t l = 0; l < layers; ++l) {
    const std::uint32_t parts = reader.read_u32();
    state.state.layers[l].reserve(parts);
    for (std::uint32_t p = 0; p < parts; ++p) {
      tensor::Matrix part = decode_matrix(codec_, reader);
      if (part.rows() != 1 || part.cols() != cfg.hidden_size) {
        throw std::runtime_error("get: stored state geometry " +
                                 part.shape_string() +
                                 " mismatches model hidden size " +
                                 std::to_string(cfg.hidden_size));
      }
      state.state.layers[l].push_back(std::move(part));
    }
  }
  return state;
}

std::optional<QuantizedStoredState> HiddenStateStore::get_q8(
    std::uint64_t user_id, const train::RnnNetwork& network) const {
  if (codec_ != StateCodec::kInt8) {
    throw std::logic_error("get_q8: store must use the kInt8 codec");
  }
  auto bytes = store_->get(key(user_id));
  if (!bytes.has_value()) return std::nullopt;
  BinaryReader reader(std::move(*bytes));
  QuantizedStoredState state;
  state.last_update_time = reader.read_i64();
  state.updates = reader.read_u32();
  const std::uint32_t layers = reader.read_u32();
  const auto& cfg = network.config();
  if (layers != static_cast<std::uint32_t>(cfg.num_layers)) {
    throw std::runtime_error("get_q8: stored layer count mismatches model");
  }
  state.state.layers.reserve(layers);
  for (std::uint32_t l = 0; l < layers; ++l) {
    const std::uint32_t parts = reader.read_u32();
    if (parts != 1) {
      throw std::runtime_error(
          "get_q8: multi-part (LSTM) states have no quantized serving path");
    }
    const std::uint32_t rows = reader.read_u32();
    const std::uint32_t cols = reader.read_u32();
    // Callers memcpy cols bytes out of the returned state; a record
    // written by a differently-sized model must not read out of bounds.
    if (rows != 1 || cols != cfg.hidden_size) {
      throw std::runtime_error("get_q8: stored state geometry " +
                               std::to_string(rows) + "x" +
                               std::to_string(cols) +
                               " mismatches model hidden size " +
                               std::to_string(cfg.hidden_size));
    }
    const float scale = reader.read_f32();
    std::vector<std::int8_t> data(static_cast<std::size_t>(rows) * cols);
    reader.read_bytes(data.data(), data.size());
    state.state.layers.push_back(tensor::QuantizedMatrix::from_raw(
        rows, cols, scale, std::move(data)));
  }
  return state;
}

void HiddenStateStore::put_q8(std::uint64_t user_id,
                              const QuantizedStoredState& state) {
  if (codec_ != StateCodec::kInt8) {
    throw std::logic_error("put_q8: store must use the kInt8 codec");
  }
  BinaryWriter writer;
  writer.write_i64(state.last_update_time);
  writer.write_u32(state.updates);
  writer.write_u32(static_cast<std::uint32_t>(state.state.layers.size()));
  for (const auto& layer : state.state.layers) {
    if (!layer.per_tensor()) {
      throw std::invalid_argument(
          "put_q8: per-user states carry one scale (got a per-row batch)");
    }
    writer.write_u32(1);  // parts: GRU h only
    writer.write_u32(static_cast<std::uint32_t>(layer.rows()));
    writer.write_u32(static_cast<std::uint32_t>(layer.cols()));
    writer.write_f32(layer.scale());
    writer.write_bytes(layer.data(), layer.size());
  }
  store_->put(key(user_id), writer.take());
}

std::size_t HiddenStateStore::encoded_bytes(
    const train::RnnNetwork& network) const {
  const auto& cfg = network.config();
  const std::size_t parts = cfg.cell == nn::CellType::kLstm ? 2 : 1;
  const std::size_t per_value = codec_ == StateCodec::kFloat32 ? 4 : 1;
  const std::size_t header = 8 + 4 + 4;
  const std::size_t per_matrix =
      8 + (codec_ == StateCodec::kInt8 ? 4 : 0) + cfg.hidden_size * per_value;
  return header +
         static_cast<std::size_t>(cfg.num_layers) * (4 + parts * per_matrix);
}

}  // namespace pp::serving
