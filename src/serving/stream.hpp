// Session-ID keyed stream join (§9): context events and access events are
// "sent to a stream processing system similar to Apache Kafka, tagged by a
// unique session ID. Events are buffered by session ID, and after a timer
// corresponding to the session length fires, the context C_i and access
// flag A_i are computed."
//
// This implements exactly that: an event-time timer wheel joins each
// session's context with an optional access event; when the timer fires
// the joined record is delivered to the consumer (which updates the RNN
// hidden state or the aggregation counters). Failure tolerance: duplicate
// events are ignored, accesses arriving before their context are held for
// one window (then expired and counted — they cannot leak), accesses
// arriving after the timer fired are dropped and counted.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>

#include "data/dataset.hpp"

namespace pp::serving {

struct JoinedSession {
  std::uint64_t session_id = 0;
  std::uint64_t user_id = 0;
  std::int64_t session_start = 0;
  std::array<std::uint32_t, data::kMaxContextFields> context{};
  bool access = false;
  /// Event time at which the join completed (timer fire).
  std::int64_t completed_at = 0;
};

struct JoinerStats {
  std::size_t contexts = 0;
  std::size_t accesses = 0;
  std::size_t joined = 0;
  std::size_t duplicate_contexts = 0;
  std::size_t duplicate_accesses = 0;
  std::size_t orphan_accesses = 0;  // access with no context by fire time
  std::size_t orphan_drops = 0;     // orphan slots expired without a context
  std::size_t late_accesses = 0;    // access after the timer fired
  std::size_t clock_rewinds = 0;    // advance_to() calls with now < clock
};

class SessionJoiner {
 public:
  using Callback = std::function<void(const JoinedSession&)>;

  /// `window` is the session length; the timer fires at session_start +
  /// window + grace (grace models pipeline latency ε). `fired_capacity`
  /// bounds the fired-session memory used to classify late accesses:
  /// the oldest fired sessions are evicted FIFO once it is exceeded.
  SessionJoiner(std::int64_t window, std::int64_t grace, Callback on_joined,
                std::size_t fired_capacity = 100000);

  /// Context event at session start. Duplicate session IDs are dropped.
  void on_context(std::uint64_t session_id, std::uint64_t user_id,
                  std::int64_t session_start,
                  const std::array<std::uint32_t, data::kMaxContextFields>&
                      context);
  /// Access event within the session window.
  void on_access(std::uint64_t session_id, std::int64_t event_time);

  /// Advances the event-time clock, firing every due timer in order. The
  /// clock is monotone: a `now` below the furthest point already reached
  /// (out-of-order bus delivery, a skewed producer) is counted in
  /// stats().clock_rewinds and clamped — event time never rewinds, and no
  /// timer can fire twice.
  void advance_to(std::int64_t now);

  /// Furthest event time advance_to() has reached.
  std::int64_t clock() const { return clock_; }
  /// Fires everything still buffered (end of replay).
  void flush();

  /// Fire time of the earliest pending timer (join or orphan expiry), or
  /// nullopt when idle. Events strictly before this time cannot observe
  /// any further state change from the wheel.
  std::optional<std::int64_t> next_timer() const {
    if (timers_.empty()) return std::nullopt;
    return timers_.begin()->first;
  }

  const JoinerStats& stats() const { return stats_; }
  std::size_t buffered() const { return pending_.size(); }

 private:
  struct Pending {
    JoinedSession session;
    bool has_context = false;
  };
  /// One timer-wheel entry. `orphan` timers expire an access-before-
  /// context slot whose context never arrived; join timers fire the
  /// completed session.
  struct Timer {
    std::uint64_t session_id = 0;
    bool orphan = false;
  };

  void fire(std::int64_t due);
  void remember_fired(std::uint64_t session_id, std::int64_t fire_time);

  std::int64_t window_;
  std::int64_t grace_;
  /// High-water mark of advance_to(); see clock().
  std::int64_t clock_ = std::numeric_limits<std::int64_t>::min();
  Callback on_joined_;
  std::size_t fired_capacity_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  /// Timers ordered by fire time.
  std::multimap<std::int64_t, Timer> timers_;
  /// Sessions already fired (to classify late accesses); bounded by
  /// fired_capacity_ with FIFO eviction (fired_order_ is the queue).
  std::unordered_map<std::uint64_t, std::int64_t> fired_;
  std::deque<std::uint64_t> fired_order_;
  JoinerStats stats_;
};

}  // namespace pp::serving
