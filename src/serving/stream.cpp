#include "serving/stream.hpp"

#include <limits>

namespace pp::serving {

SessionJoiner::SessionJoiner(std::int64_t window, std::int64_t grace,
                             Callback on_joined, std::size_t fired_capacity)
    : window_(window),
      grace_(grace),
      on_joined_(std::move(on_joined)),
      fired_capacity_(fired_capacity) {}

void SessionJoiner::on_context(
    std::uint64_t session_id, std::uint64_t user_id,
    std::int64_t session_start,
    const std::array<std::uint32_t, data::kMaxContextFields>& context) {
  ++stats_.contexts;
  auto [it, inserted] = pending_.try_emplace(session_id);
  if (it->second.has_context) {
    ++stats_.duplicate_contexts;
    return;
  }
  it->second.has_context = true;
  it->second.session.session_id = session_id;
  it->second.session.user_id = user_id;
  it->second.session.session_start = session_start;
  it->second.session.context = context;
  timers_.emplace(session_start + window_ + grace_,
                  Timer{session_id, /*orphan=*/false});
}

void SessionJoiner::on_access(std::uint64_t session_id,
                              std::int64_t event_time) {
  ++stats_.accesses;
  const auto it = pending_.find(session_id);
  if (it == pending_.end()) {
    if (fired_.count(session_id) > 0) {
      ++stats_.late_accesses;
    } else {
      // Access before its context: hold it in a context-less slot with an
      // expiry timer one window out — if the context never arrives the
      // slot is dropped then (orphan_drops), so a long run cannot
      // accumulate dead slots.
      auto [slot, inserted] = pending_.try_emplace(session_id);
      if (inserted) {
        slot->second.session.session_id = session_id;
        slot->second.session.access = true;
        timers_.emplace(event_time + window_ + grace_,
                        Timer{session_id, /*orphan=*/true});
        ++stats_.orphan_accesses;
      } else {
        ++stats_.duplicate_accesses;
      }
    }
    return;
  }
  if (it->second.session.access) {
    ++stats_.duplicate_accesses;
    return;
  }
  it->second.session.access = true;
}

void SessionJoiner::fire(std::int64_t due) {
  while (!timers_.empty() && timers_.begin()->first <= due) {
    const auto [fire_time, timer] = *timers_.begin();
    timers_.erase(timers_.begin());
    const auto it = pending_.find(timer.session_id);
    if (it == pending_.end()) continue;  // already fired or expired
    if (timer.orphan) {
      // Expiry timer for an access-before-context slot. If the context
      // showed up meanwhile, the join timer registered by on_context owns
      // the slot — never fire or drop it early here.
      if (!it->second.has_context) {
        pending_.erase(it);
        ++stats_.orphan_drops;
      }
      continue;
    }
    JoinedSession joined = it->second.session;
    joined.completed_at = fire_time;
    pending_.erase(it);
    remember_fired(timer.session_id, fire_time);
    ++stats_.joined;
    if (on_joined_) on_joined_(joined);
  }
}

void SessionJoiner::remember_fired(std::uint64_t session_id,
                                   std::int64_t fire_time) {
  const auto [it, inserted] = fired_.emplace(session_id, fire_time);
  if (!inserted) return;
  fired_order_.push_back(session_id);
  // Bound the fired-session memory (late-access classification window) by
  // evicting only the oldest entries; a wholesale clear would misclassify
  // every late access right after the purge as an orphan and grow dead
  // pending slots from them.
  while (fired_order_.size() > fired_capacity_) {
    fired_.erase(fired_order_.front());
    fired_order_.pop_front();
  }
}

void SessionJoiner::advance_to(std::int64_t now) {
  if (now < clock_) {
    // Out-of-order delivery (e.g. a lagging bus lane) must not rewind the
    // event-time clock: count it and hold at the high-water mark. fire() is
    // idempotent for times already reached, so clamping is a no-op replay.
    ++stats_.clock_rewinds;
    now = clock_;
  }
  clock_ = now;
  fire(now);
}

void SessionJoiner::flush() {
  fire(std::numeric_limits<std::int64_t>::max());
  pending_.clear();
}

}  // namespace pp::serving
