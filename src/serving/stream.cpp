#include "serving/stream.hpp"

#include <limits>

namespace pp::serving {

SessionJoiner::SessionJoiner(std::int64_t window, std::int64_t grace,
                             Callback on_joined)
    : window_(window), grace_(grace), on_joined_(std::move(on_joined)) {}

void SessionJoiner::on_context(
    std::uint64_t session_id, std::uint64_t user_id,
    std::int64_t session_start,
    const std::array<std::uint32_t, data::kMaxContextFields>& context) {
  ++stats_.contexts;
  auto [it, inserted] = pending_.try_emplace(session_id);
  if (it->second.has_context) {
    ++stats_.duplicate_contexts;
    return;
  }
  it->second.has_context = true;
  it->second.session.session_id = session_id;
  it->second.session.user_id = user_id;
  it->second.session.session_start = session_start;
  it->second.session.context = context;
  timers_.emplace(session_start + window_ + grace_, session_id);
}

void SessionJoiner::on_access(std::uint64_t session_id,
                              std::int64_t event_time) {
  ++stats_.accesses;
  const auto it = pending_.find(session_id);
  if (it == pending_.end()) {
    if (fired_.count(session_id) > 0) {
      ++stats_.late_accesses;
    } else {
      // Access before its context: hold it in a context-less slot; if the
      // context never arrives the slot is dropped as orphan at flush.
      auto [slot, inserted] = pending_.try_emplace(session_id);
      if (inserted) {
        slot->second.session.session_id = session_id;
        slot->second.session.access = true;
        // No timer: an orphan slot only fires if its context shows up —
        // on_context registers the timer.
        ++stats_.orphan_accesses;
      } else {
        ++stats_.duplicate_accesses;
      }
    }
    return;
  }
  if (it->second.session.access) {
    ++stats_.duplicate_accesses;
    return;
  }
  (void)event_time;
  it->second.session.access = true;
}

void SessionJoiner::fire(std::int64_t due) {
  while (!timers_.empty() && timers_.begin()->first <= due) {
    const auto [fire_time, session_id] = *timers_.begin();
    timers_.erase(timers_.begin());
    const auto it = pending_.find(session_id);
    if (it == pending_.end()) continue;  // already fired (duplicate timer)
    if (!it->second.has_context) continue;
    JoinedSession joined = it->second.session;
    joined.completed_at = fire_time;
    pending_.erase(it);
    fired_.emplace(session_id, fire_time);
    ++stats_.joined;
    if (on_joined_) on_joined_(joined);
  }
  // Bound the fired-session memory (late-access classification window).
  if (fired_.size() > 100000) fired_.clear();
}

void SessionJoiner::advance_to(std::int64_t now) { fire(now); }

void SessionJoiner::flush() {
  fire(std::numeric_limits<std::int64_t>::max());
  pending_.clear();
}

}  // namespace pp::serving
