#include "serving/precompute_service.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "eval/metrics.hpp"
#include "train/sequence.hpp"
#include "util/math.hpp"

namespace pp::serving {

// -------------------------------------------------------- PrecomputePolicy

std::vector<double> PrecomputePolicy::score_sessions(
    std::span<const SessionStart> sessions) {
  std::vector<double> scores;
  scores.reserve(sessions.size());
  for (const SessionStart& s : sessions) {
    scores.push_back(score_session(s.user_id, s.t, s.context));
  }
  return scores;
}

// --------------------------------------------------------------- RnnPolicy

RnnPolicy::RnnPolicy(const models::RnnModel& model, HiddenStateStore& store)
    : model_(&model),
      store_(&store),
      bucketizer_(
          static_cast<int>(model.network().config().time_buckets)) {}

double RnnPolicy::score_session(std::uint64_t user_id, std::int64_t t,
                                std::span<const std::uint32_t> context) {
  // One-element batch: score_sessions owns the encode/gap/cold-start and
  // cost-accounting logic, so single and batched scoring cannot drift.
  SessionStart s;
  s.user_id = user_id;
  s.t = t;
  std::copy_n(context.begin(), std::min(context.size(), s.context.size()),
              s.context.begin());
  return score_sessions({&s, 1}).front();
}

std::vector<double> RnnPolicy::score_sessions(
    std::span<const SessionStart> sessions) {
  const std::size_t batch = sessions.size();
  if (batch == 0) return {};
  const train::RnnNetwork& net = model_->network();
  const auto& seq_cfg = model_->sequence_config();
  const std::size_t fw = net.config().feature_size;
  const std::size_t tb = net.config().time_buckets;

  tensor::Matrix x(batch, fw + tb);
  tensor::Matrix h(batch, net.config().hidden_size);
  const train::InferenceState cold = net.infer_initial_state();
  for (std::size_t b = 0; b < batch; ++b) {
    const SessionStart& s = sessions[b];
    // Still one KV lookup per session (§9's dominant serving cost term);
    // only the model evaluation is batched.
    const auto stored = store_->get(s.user_id, net);
    if (seq_cfg.context_at_predict && fw > 0) {
      train::encode_step_features(model_->schema(), seq_cfg.feature_mode,
                                  s.t, s.context, x.row(b));
    }
    const std::int64_t gap = stored.has_value() && stored->updates > 0
                                 ? s.t - stored->last_update_time
                                 : 0;
    bucketizer_.encode(gap, x.row(b).subspan(fw, tb));
    const tensor::Matrix& hidden =
        stored.has_value() ? stored->state.hidden() : cold.hidden();
    std::memcpy(h.row(b).data(), hidden.data(), h.cols() * sizeof(float));
  }

  std::vector<double> scores = model_->score_session_batch(h, x);
  costs_.predictions += batch;
  costs_.model_flops += batch * net.predict_flops();
  return scores;
}

void RnnPolicy::on_session_complete(const JoinedSession& joined) {
  const train::RnnNetwork& net = model_->network();
  const auto& seq_cfg = model_->sequence_config();
  const std::size_t fw = net.config().feature_size;
  const std::size_t tb = net.config().time_buckets;

  StoredState state;
  if (auto stored = store_->get(joined.user_id, net); stored.has_value()) {
    state = std::move(*stored);
  } else {
    state.state = net.infer_initial_state();
  }

  tensor::Matrix row(1, fw + tb + 1);
  if (fw > 0) {
    train::encode_step_features(model_->schema(), seq_cfg.feature_mode,
                                joined.session_start, joined.context,
                                row.row(0));
  }
  const std::int64_t dt = state.updates > 0
                              ? joined.session_start - state.last_update_time
                              : 0;
  bucketizer_.encode(dt, row.row(0).subspan(fw, tb));
  row.row(0)[fw + tb] = joined.access ? 1.0f : 0.0f;

  net.infer_update(state.state, row);
  state.last_update_time = joined.session_start;
  state.updates += 1;
  store_->put(joined.user_id, state);
  ++costs_.state_updates;
  costs_.model_flops += net.update_flops();
}

ServingCostSummary RnnPolicy::cost_summary() const {
  ServingCostSummary summary = costs_;
  summary.kv = store_->store().stats();
  summary.storage_bytes = store_->store().value_bytes();
  summary.live_keys = store_->store().size();
  return summary;
}

// -------------------------------------------------------------- GbdtPolicy

GbdtPolicy::GbdtPolicy(const models::GbdtModel& model,
                       const features::FeaturePipeline& pipeline,
                       AggregationService& aggregation)
    : model_(&model),
      pipeline_(&pipeline),
      aggregation_(&aggregation),
      dense_(pipeline.dimension(), 0.0f) {}

double GbdtPolicy::score_session(std::uint64_t user_id, std::int64_t t,
                                 std::span<const std::uint32_t> context) {
  aggregation_->serve_features(user_id, t, context, row_);
  std::fill(dense_.begin(), dense_.end(), 0.0f);
  for (const auto& [col, value] : row_) dense_[col] = value;
  const double p = model_->predict_row(dense_);
  ++costs_.predictions;
  // Tree-walk cost: one comparison per level per tree.
  costs_.model_flops += static_cast<std::size_t>(
      model_->booster().mean_tree_depth() *
      static_cast<double>(model_->booster().num_trees()));
  return p;
}

void GbdtPolicy::on_session_complete(const JoinedSession& joined) {
  data::Session session;
  session.timestamp = joined.session_start;
  session.context = joined.context;
  session.access = joined.access ? 1 : 0;
  aggregation_->apply_session(joined.user_id, session);
  ++costs_.state_updates;
}

ServingCostSummary GbdtPolicy::cost_summary() const {
  ServingCostSummary summary = costs_;
  summary.kv = aggregation_->kv_stats();
  summary.storage_bytes = aggregation_->storage_bytes();
  summary.live_keys = aggregation_->total_live_keys();
  return summary;
}

// ------------------------------------------------------------ OnlineMetrics

void OnlineMetrics::record(std::int64_t t, double score, bool prefetched,
                           bool access) {
  const auto day = static_cast<std::size_t>(
      std::max<std::int64_t>(0, (t - start_time_) / 86400));
  if (day >= daily_scores_.size()) {
    daily_scores_.resize(day + 1);
    daily_labels_.resize(day + 1);
  }
  daily_scores_[day].push_back(score);
  daily_labels_[day].push_back(access ? 1.0f : 0.0f);
  ++total_predictions_;
  if (prefetched) ++total_prefetches_;
  if (access) {
    ++total_accesses_;
    if (prefetched) ++successful_;
  }
}

double OnlineMetrics::daily_pr_auc(std::size_t day) const {
  if (day >= daily_scores_.size() || daily_scores_[day].empty()) return 0.0;
  bool has_positive = false, has_negative = false;
  for (const float y : daily_labels_[day]) {
    (y > 0.5f ? has_positive : has_negative) = true;
  }
  if (!has_positive || !has_negative) return 0.0;
  return eval::pr_auc(daily_scores_[day], daily_labels_[day]);
}

std::vector<double> OnlineMetrics::daily_pr_auc_series() const {
  std::vector<double> series(days());
  for (std::size_t d = 0; d < days(); ++d) series[d] = daily_pr_auc(d);
  return series;
}

double OnlineMetrics::precision() const {
  return total_prefetches_ == 0
             ? 1.0
             : static_cast<double>(successful_) /
                   static_cast<double>(total_prefetches_);
}

double OnlineMetrics::recall() const {
  return total_accesses_ == 0
             ? 0.0
             : static_cast<double>(successful_) /
                   static_cast<double>(total_accesses_);
}

// -------------------------------------------------------- PrecomputeService

PrecomputeService::PrecomputeService(PrecomputePolicy& policy,
                                     double threshold,
                                     std::int64_t session_length,
                                     std::int64_t grace,
                                     std::int64_t metrics_start)
    : policy_(&policy),
      threshold_(threshold),
      joiner_(session_length, grace,
              [this](const JoinedSession& joined) {
                const auto it = pending_.find(joined.session_id);
                if (it != pending_.end()) {
                  metrics_.record(joined.session_start, it->second.score,
                                  it->second.prefetched, joined.access);
                  pending_.erase(it);
                }
                policy_->on_session_complete(joined);
              }),
      metrics_(metrics_start) {}

bool PrecomputeService::on_session_start(
    std::uint64_t session_id, std::uint64_t user_id, std::int64_t t,
    const std::array<std::uint32_t, data::kMaxContextFields>& context) {
  // Fire due timers first: hidden updates become visible exactly delta
  // after their session start, matching the offline lag-δ semantics.
  joiner_.advance_to(t);
  const double score = policy_->score_session(user_id, t, context);
  const bool prefetch = score >= threshold_;
  pending_[session_id] = {score, prefetch};
  joiner_.on_context(session_id, user_id, t, context);
  return prefetch;
}

std::vector<bool> PrecomputeService::on_session_starts(
    std::span<const SessionStart> sessions) {
  std::vector<bool> decisions(sessions.size());
  if (sessions.empty()) return decisions;
  std::int64_t earliest = sessions.front().t;
  for (const SessionStart& s : sessions) earliest = std::min(earliest, s.t);
  joiner_.advance_to(earliest);
  const std::vector<double> scores = policy_->score_sessions(sessions);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const bool prefetch = scores[i] >= threshold_;
    decisions[i] = prefetch;
    pending_[sessions[i].session_id] = {scores[i], prefetch};
    joiner_.on_context(sessions[i].session_id, sessions[i].user_id,
                       sessions[i].t, sessions[i].context);
  }
  return decisions;
}

void PrecomputeService::on_access(std::uint64_t session_id, std::int64_t t) {
  joiner_.on_access(session_id, t);
}

}  // namespace pp::serving
