#include "serving/precompute_service.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "eval/metrics.hpp"
#include "obs/metrics.hpp"
#include "train/sequence.hpp"
#include "util/math.hpp"

namespace pp::serving {

// -------------------------------------------------------- PrecomputePolicy

std::vector<double> PrecomputePolicy::score_sessions(
    std::span<const SessionStart> sessions) {
  std::vector<double> scores;
  scores.reserve(sessions.size());
  for (const SessionStart& s : sessions) {
    scores.push_back(score_session(s.user_id, s.t, s.context));
  }
  return scores;
}

// --------------------------------------------------------------- RnnPolicy

RnnPolicy::RnnPolicy(const models::RnnModel& model, HiddenStateStore& store,
                     ScorePrecision precision)
    : model_(&model),
      store_(&store),
      precision_(precision),
      bucketizer_(
          static_cast<int>(model.network().config().time_buckets)) {
  if (precision_ == ScorePrecision::kInt8) {
    if (store.codec() != StateCodec::kInt8) {
      throw std::invalid_argument(
          "RnnPolicy: int8 scoring needs a kInt8-codec HiddenStateStore");
    }
    if (!model.quantized_serving()) {
      throw std::invalid_argument(
          "RnnPolicy: call RnnModel::enable_quantized_serving() before "
          "constructing an int8 policy");
    }
  }
  init_obs();
}

RnnPolicy::RnnPolicy(const online::ModelRegistry& registry,
                     HiddenStateStore& store, ScorePrecision precision)
    : model_(nullptr),
      registry_(&registry),
      active_(registry.current()),
      store_(&store),
      precision_(precision),
      // Geometry is fixed across publishes (the registry enforces it), so
      // the seed version's time encoding is every version's time encoding.
      bucketizer_(static_cast<int>(
          registry.current()->model->network().config().time_buckets)) {
  if (precision_ == ScorePrecision::kInt8) {
    if (store.codec() != StateCodec::kInt8) {
      throw std::invalid_argument(
          "RnnPolicy: int8 scoring needs a kInt8-codec HiddenStateStore");
    }
    if (!active_->model->quantized_serving() ||
        !registry.quantize_replicas()) {
      throw std::invalid_argument(
          "RnnPolicy: int8 scoring through a registry requires "
          "quantize_replicas (every published version needs fresh int8 "
          "replicas)");
    }
  }
  init_obs();
}

void RnnPolicy::init_obs() {
  auto& registry = obs::MetricsRegistry::global();
  const char* prec = precision_ == ScorePrecision::kInt8 ? "int8" : "f32";
  obs_kv_get_ = &registry.histogram(
      "pp_serving_stage_ns", {{"stage", "kv_get"}, {"precision", prec}});
  obs_encode_ = &registry.histogram(
      "pp_serving_stage_ns",
      {{"stage", "feature_encode"}, {"precision", prec}});
  obs_gru_ = &registry.histogram(
      "pp_serving_stage_ns", {{"stage", "gru_update"}, {"precision", prec}});
  obs_batch_wall_ =
      &registry.histogram("pp_serving_batch_ns", {{"precision", prec}});
  obs_batch_sessions_ =
      &registry.histogram("pp_serving_batch_sessions", {{"precision", prec}});
}

void RnnPolicy::begin_batch() {
  if (registry_ != nullptr) active_ = registry_->current();
}

double RnnPolicy::score_session(std::uint64_t user_id, std::int64_t t,
                                std::span<const std::uint32_t> context) {
  // One-element batch: score_sessions owns the encode/gap/cold-start and
  // cost-accounting logic, so single and batched scoring cannot drift.
  SessionStart s;
  s.user_id = user_id;
  s.t = t;
  std::copy_n(context.begin(), std::min(context.size(), s.context.size()),
              s.context.begin());
  return score_sessions({&s, 1}).front();
}

std::vector<double> RnnPolicy::score_sessions(
    std::span<const SessionStart> sessions) {
  const std::size_t batch = sessions.size();
  if (batch == 0) return {};
  const models::RnnModel& active = model();
  const train::RnnNetwork& net = active.network();
  const auto& seq_cfg = active.sequence_config();
  const std::size_t fw = net.config().feature_size;
  const std::size_t tb = net.config().time_buckets;
  const std::size_t hidden_size = net.config().hidden_size;
  const bool q8 = precision_ == ScorePrecision::kInt8;

  tensor::Matrix x(batch, fw + tb);
  // f32 mode gathers decoded hidden rows; int8 mode gathers the stored
  // bytes themselves (per-row scales). Cold users get the cell's actual
  // initial state (not an assumed zero fill) in either precision.
  tensor::Matrix h(q8 ? 0 : batch, hidden_size);
  tensor::QuantizedMatrix h_q8(q8 ? batch : 0, hidden_size);
  const train::InferenceState cold =
      q8 ? train::InferenceState{} : net.infer_initial_state();
  const train::QuantizedInferenceState cold_q8 =
      q8 ? net.infer_initial_state_q8() : train::QuantizedInferenceState{};
  // Per-batch stage breakdown (sampled 1-in-N): kv_get and feature_encode
  // accumulate per-session laps; head_gemm/sigmoid are recorded inside
  // score_session_batch under the same SampledSection; the span's total is
  // this function's wall time. Pure observation — no branch below depends
  // on a recorded value.
  obs::TraceSpan span({obs_kv_get_, obs_encode_}, obs_batch_wall_);
  for (std::size_t b = 0; b < batch; ++b) {
    const SessionStart& s = sessions[b];
    span.stage_begin();
    // Still one KV lookup per session (§9's dominant serving cost term);
    // only the model evaluation is batched. The stripe lock orders the
    // snapshot read against any concurrent on_session_complete for the
    // same user.
    std::int64_t last_update_time = 0;
    std::uint32_t updates = 0;
    if (q8) {
      std::optional<QuantizedStoredState> stored;
      {
        MutexLock lock(stripe_for(s.user_id));
        stored = store_->get_q8(s.user_id, net);
      }
      if (stored.has_value()) {
        last_update_time = stored->last_update_time;
        updates = stored->updates;
      }
      const tensor::QuantizedMatrix& hidden =
          stored.has_value() ? stored->state.hidden() : cold_q8.hidden();
      std::memcpy(h_q8.row_data(b), hidden.data(), hidden_size);
      h_q8.set_row_scale(b, hidden.scale());
    } else {
      std::optional<StoredState> stored;
      {
        MutexLock lock(stripe_for(s.user_id));
        stored = store_->get(s.user_id, net);
      }
      if (stored.has_value()) {
        last_update_time = stored->last_update_time;
        updates = stored->updates;
      }
      const tensor::Matrix& hidden =
          stored.has_value() ? stored->state.hidden() : cold.hidden();
      std::memcpy(h.row(b).data(), hidden.data(),
                  hidden_size * sizeof(float));
    }
    span.stage_add(0);  // kv_get: stripe-locked lookup + state gather
    if (seq_cfg.context_at_predict && fw > 0) {
      train::encode_step_features(active.schema(), seq_cfg.feature_mode,
                                  s.t, s.context, x.row(b));
    }
    const std::int64_t gap = updates > 0 ? s.t - last_update_time : 0;
    bucketizer_.encode(gap, x.row(b).subspan(fw, tb));
    span.stage_add(1);  // feature_encode: context + gap bucketization
  }

  std::vector<double> scores = q8 ? active.score_session_batch_q8(h_q8, x)
                                  : active.score_session_batch(h, x);
  if (span.sampled()) {
    obs_batch_sessions_->record(static_cast<std::int64_t>(batch));
  }
  predictions_.fetch_add(batch, std::memory_order_relaxed);
  model_flops_.fetch_add(batch * net.predict_flops(),
                         std::memory_order_relaxed);
  return scores;
}

void RnnPolicy::on_session_complete(const JoinedSession& joined) {
  const models::RnnModel& active = model();
  const train::RnnNetwork& net = active.network();
  const auto& seq_cfg = active.sequence_config();
  const std::size_t fw = net.config().feature_size;
  const std::size_t tb = net.config().time_buckets;

  // gru_update stage: the whole completion (get -> GRU step -> put,
  // including the stripe-lock wait) is the paper's state-update cost unit.
  obs::ScopedTimer stage_timer(obs::sample_tick() ? obs_gru_ : nullptr);

  // The whole get -> GRU step -> put is one read-modify-write of the
  // user's stored state; the stripe lock keeps concurrent completions for
  // the same user strictly ordered (no lost updates).
  MutexLock lock(stripe_for(joined.user_id));

  // Read the prior state in the active precision. The int8 mode keeps the
  // stored bytes as-is: they feed the quantized GRU products directly and
  // only the updated hidden is re-encoded.
  StoredState state;
  QuantizedStoredState state_q8;
  const bool q8 = precision_ == ScorePrecision::kInt8;
  std::int64_t last_update_time = 0;
  std::uint32_t updates = 0;
  if (q8) {
    if (auto stored = store_->get_q8(joined.user_id, net);
        stored.has_value()) {
      state_q8 = std::move(*stored);
    } else {
      state_q8.state = net.infer_initial_state_q8();
    }
    last_update_time = state_q8.last_update_time;
    updates = state_q8.updates;
  } else {
    if (auto stored = store_->get(joined.user_id, net); stored.has_value()) {
      state = std::move(*stored);
    } else {
      state.state = net.infer_initial_state();
    }
    last_update_time = state.last_update_time;
    updates = state.updates;
  }

  tensor::Matrix row(1, fw + tb + 1);
  if (fw > 0) {
    train::encode_step_features(active.schema(), seq_cfg.feature_mode,
                                joined.session_start, joined.context,
                                row.row(0));
  }
  const std::int64_t dt =
      updates > 0 ? joined.session_start - last_update_time : 0;
  bucketizer_.encode(dt, row.row(0).subspan(fw, tb));
  row.row(0)[fw + tb] = joined.access ? 1.0f : 0.0f;

  if (q8) {
    net.infer_update_q8(state_q8.state, row);
    state_q8.last_update_time = joined.session_start;
    state_q8.updates += 1;
    store_->put_q8(joined.user_id, state_q8);
  } else {
    net.infer_update(state.state, row);
    state.last_update_time = joined.session_start;
    state.updates += 1;
    store_->put(joined.user_id, state);
  }
  state_updates_.fetch_add(1, std::memory_order_relaxed);
  model_flops_.fetch_add(net.update_flops(), std::memory_order_relaxed);
}

ServingCostSummary RnnPolicy::cost_summary() const {
  ServingCostSummary summary;
  summary.predictions = predictions_.load(std::memory_order_relaxed);
  summary.state_updates = state_updates_.load(std::memory_order_relaxed);
  summary.model_flops = model_flops_.load(std::memory_order_relaxed);
  summary.kv = store_->store().stats();
  summary.storage_bytes = store_->store().value_bytes();
  summary.live_keys = store_->store().size();
  return summary;
}

// -------------------------------------------------------------- GbdtPolicy

GbdtPolicy::GbdtPolicy(const models::GbdtModel& model,
                       const features::FeaturePipeline& pipeline,
                       AggregationService& aggregation)
    : model_(&model),
      pipeline_(&pipeline),
      aggregation_(&aggregation),
      dense_(pipeline.dimension(), 0.0f) {}

double GbdtPolicy::score_session(std::uint64_t user_id, std::int64_t t,
                                 std::span<const std::uint32_t> context) {
  aggregation_->serve_features(user_id, t, context, row_);
  std::fill(dense_.begin(), dense_.end(), 0.0f);
  for (const auto& [col, value] : row_) dense_[col] = value;
  const double p = model_->predict_row(dense_);
  ++costs_.predictions;
  // Tree-walk cost: one comparison per level per tree.
  costs_.model_flops += static_cast<std::size_t>(
      model_->booster().mean_tree_depth() *
      static_cast<double>(model_->booster().num_trees()));
  return p;
}

void GbdtPolicy::on_session_complete(const JoinedSession& joined) {
  data::Session session;
  session.timestamp = joined.session_start;
  session.context = joined.context;
  session.access = joined.access ? 1 : 0;
  aggregation_->apply_session(joined.user_id, session);
  ++costs_.state_updates;
}

ServingCostSummary GbdtPolicy::cost_summary() const {
  ServingCostSummary summary = costs_;
  summary.kv = aggregation_->kv_stats();
  summary.storage_bytes = aggregation_->storage_bytes();
  summary.live_keys = aggregation_->total_live_keys();
  return summary;
}

// ------------------------------------------------------------ OnlineMetrics

void OnlineMetrics::record(std::int64_t t, double score, bool prefetched,
                           bool access) {
  const auto day = static_cast<std::size_t>(
      std::max<std::int64_t>(0, (t - start_time_) / 86400));
  if (day >= daily_scores_.size()) {
    daily_scores_.resize(day + 1);
    daily_labels_.resize(day + 1);
  }
  daily_scores_[day].push_back(score);
  daily_labels_[day].push_back(access ? 1.0f : 0.0f);
  ++total_predictions_;
  if (prefetched) ++total_prefetches_;
  if (access) {
    ++total_accesses_;
    if (prefetched) ++successful_;
  }
}

double OnlineMetrics::daily_pr_auc(std::size_t day) const {
  if (day >= daily_scores_.size() || daily_scores_[day].empty()) return 0.0;
  bool has_positive = false, has_negative = false;
  for (const float y : daily_labels_[day]) {
    (y > 0.5f ? has_positive : has_negative) = true;
  }
  if (!has_positive || !has_negative) return 0.0;
  return eval::pr_auc(daily_scores_[day], daily_labels_[day]);
}

std::vector<double> OnlineMetrics::daily_pr_auc_series() const {
  std::vector<double> series(days());
  for (std::size_t d = 0; d < days(); ++d) series[d] = daily_pr_auc(d);
  return series;
}

double OnlineMetrics::precision() const {
  return total_prefetches_ == 0
             ? 1.0
             : static_cast<double>(successful_) /
                   static_cast<double>(total_prefetches_);
}

double OnlineMetrics::recall() const {
  return total_accesses_ == 0
             ? 0.0
             : static_cast<double>(successful_) /
                   static_cast<double>(total_accesses_);
}

// -------------------------------------------------------- PrecomputeService

PrecomputeService::PrecomputeService(PrecomputePolicy& policy,
                                     double threshold,
                                     std::int64_t session_length,
                                     std::int64_t grace,
                                     std::int64_t metrics_start)
    : policy_(&policy),
      threshold_(threshold),
      horizon_(session_length + grace),
      joiner_(session_length, grace,
              [this](const JoinedSession& joined) {
                // Every joiner_ entry point is called with mutex_ held
                // (it is GUARDED_BY(mutex_)), but the analysis looks at
                // this lambda as its own function and cannot see that
                // acquisition — assert the invariant instead of weakening
                // handle_joined's requirement.
                mutex_.assert_held();
                handle_joined(joined);
              }),
      metrics_(metrics_start) {
  auto& registry = obs::MetricsRegistry::global();
  obs_decision_ns_ = &registry.histogram(
      "pp_serving_stage_ns",
      {{"stage", "decision_joiner"}, {"policy", policy.name()}});
  obs_prefetches_ = &registry.counter(
      "pp_serving_decisions",
      {{"policy", policy.name()}, {"decision", "prefetch"}});
  obs_skips_ = &registry.counter(
      "pp_serving_decisions", {{"policy", policy.name()}, {"decision", "skip"}});
}

void PrecomputeService::handle_joined(const JoinedSession& joined) {
  const auto it = pending_.find(joined.session_id);
  if (it != pending_.end()) {
    metrics_.record(joined.session_start, it->second.score,
                    it->second.prefetched, joined.access);
    pending_.erase(it);
  }
  policy_->on_session_complete(joined);
  // Joiner→learner feed: the listener sees the session after the state
  // update, still under the service mutex.
  if (completion_listener_) completion_listener_(joined);
}

bool PrecomputeService::on_session_start(
    std::uint64_t session_id, std::uint64_t user_id, std::int64_t t,
    const std::array<std::uint32_t, data::kMaxContextFields>& context) {
  MutexLock guard(mutex_);
  // Hot-swap observation point: a single session start is its own
  // snapshot group, so completions and scoring below share one version.
  // The SerialSection claims the policy's begin-batch contract: this
  // thread holds the service mutex, so nothing scores concurrently.
  {
    SerialSection serial(policy_->serial_token());
    policy_->begin_batch();
  }
  // Fire due timers first: hidden updates become visible exactly delta
  // after their session start, matching the offline lag-δ semantics.
  joiner_.advance_to(t);
  const double score = policy_->score_session(user_id, t, context);
  const bool prefetch = score >= threshold_;
  (prefetch ? obs_prefetches_ : obs_skips_)->inc();
  pending_[session_id] = {score, prefetch};
  joiner_.on_context(session_id, user_id, t, context);
  return prefetch;
}

std::vector<bool> PrecomputeService::on_session_starts(
    std::span<const SessionStart> sessions) {
  return run_session_starts(sessions, nullptr);
}

std::vector<bool> PrecomputeService::on_session_starts(
    std::span<const SessionStart> sessions, ThreadPool& pool) {
  return run_session_starts(sessions, &pool);
}

namespace {

/// splitmix64 finalizer. Partitioning by raw user_id % parts would let a
/// strided or parity-skewed id population collapse onto a few partitions;
/// mixing first keeps the split even while staying a pure function of
/// user_id (user-affinity preserved).
std::uint64_t mix_user_id(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Shared state of one group fan-out. Helpers hold it by shared_ptr, so a
/// helper that only gets scheduled after the group already finished (or
/// after the service is gone) finds no partition left to claim and exits
/// without touching anything else.
struct GroupFanout {
  std::vector<std::vector<SessionStart>> part_sessions;
  std::vector<std::vector<std::size_t>> part_slots;
  std::vector<double> scores;
  std::atomic<std::size_t> next{0};
  Mutex done_mutex;
  CondVar done_cv;
  /// Partitions finished.
  std::size_t completed PP_GUARDED_BY(done_mutex) = 0;
  /// First scoring error.
  std::exception_ptr error PP_GUARDED_BY(done_mutex);

  /// Claims partitions until none remain. Every claimed partition is
  /// counted as completed even when scoring throws, so the waiter always
  /// unblocks. Takes the policy by pointer and only dereferences it after
  /// claiming a partition: a helper that runs after the group finished
  /// must not touch the (possibly destroyed) policy at all.
  void drain(PrecomputePolicy* policy) {
    for (;;) {
      const std::size_t p = next.fetch_add(1);
      if (p >= part_sessions.size()) return;
      std::exception_ptr failure;
      try {
        const std::vector<double> part =
            policy->score_sessions(part_sessions[p]);
        for (std::size_t j = 0; j < part.size(); ++j) {
          scores[part_slots[p][j]] = part[j];
        }
      } catch (...) {
        failure = std::current_exception();
      }
      MutexLock lock(done_mutex);
      if (failure && !error) error = failure;
      if (++completed == part_sessions.size()) done_cv.notify_all();
    }
  }
};

}  // namespace

std::vector<double> PrecomputeService::score_group(
    std::span<const SessionStart> sessions,
    std::span<const std::size_t> order, ThreadPool* pool) {
  const std::size_t count = order.size();
  // Inline when fanning out cannot help: no pool, a tiny group, a policy
  // without concurrent support, or the caller already being one of the
  // pool's workers (its siblings are likely busy, and inline is the same
  // caller-runs degradation parallel_for uses).
  if (pool == nullptr || pool->size() < 2 || count < 2 ||
      pool->on_worker_thread() || !policy_->concurrent_safe()) {
    std::vector<SessionStart> group;
    group.reserve(count);
    for (const std::size_t idx : order) group.push_back(sessions[idx]);
    return policy_->score_sessions(group);
  }
  // User-affine partition: user_id alone picks the partition, so two
  // sessions of the same user in one group stay in one partition in
  // group order, and no user's hidden state is read by two threads. At
  // most one thread executes a given partition (claimed via `next`).
  const std::size_t parts = std::min(pool->size(), count);
  auto state = std::make_shared<GroupFanout>();
  state->part_sessions.resize(parts);
  state->part_slots.resize(parts);
  for (std::size_t i = 0; i < count; ++i) {
    const SessionStart& s = sessions[order[i]];
    const std::size_t p = static_cast<std::size_t>(mix_user_id(s.user_id) %
                                                   parts);
    state->part_sessions[p].push_back(s);
    state->part_slots[p].push_back(i);
  }
  state->scores.assign(count, 0.0);
  // Helpers are optional accelerators; the caller drains partitions
  // itself, so the group completes even if every worker is starved (e.g.
  // all of them blocked on this service's mutex). The futures are
  // deliberately not awaited — a late helper no-ops against the shared
  // state. One helper per non-empty partition beyond the caller's first;
  // empty partitions need no thread at all.
  std::size_t nonempty = 0;
  for (const auto& part : state->part_sessions) {
    nonempty += part.empty() ? 0 : 1;
  }
  PrecomputePolicy* const policy = policy_;
  for (std::size_t h = 1; h < nonempty; ++h) {
    pool->submit([state, policy] { state->drain(policy); });
  }
  state->drain(policy_);
  {
    MutexLock lock(state->done_mutex);
    while (state->completed != state->part_sessions.size()) {
      state->done_cv.wait(state->done_mutex);
    }
    if (state->error) std::rethrow_exception(state->error);
  }
  return std::move(state->scores);
}

std::vector<bool> PrecomputeService::run_session_starts(
    std::span<const SessionStart> sessions, ThreadPool* pool) {
  std::vector<bool> decisions(sessions.size());
  if (sessions.empty()) return decisions;
  MutexLock guard(mutex_);

  // Process in non-decreasing timestamp order (stable within a
  // timestamp): advancing only to the earliest t would score sessions
  // late in the batch against hidden states missing every update the
  // sequential path would have fired mid-batch.
  std::vector<std::size_t> order(sessions.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&sessions](std::size_t a, std::size_t b) {
                     return sessions[a].t < sessions[b].t;
                   });

  std::size_t begin = 0;
  while (begin < order.size()) {
    const std::int64_t t = sessions[order[begin]].t;
    // Model hot-swaps are observed between snapshot groups: the pin below
    // covers this group's timer-driven completions and its scoring, so a
    // concurrent publish can never mix versions inside one group.
    {
      SerialSection serial(policy_->serial_token());
      policy_->begin_batch();
    }
    joiner_.advance_to(t);

    // Extend the group while no timer can fire before the next session:
    // neither a pending timer (all now strictly after t) nor the earliest
    // timer this group itself registers (t + horizon). Every member then
    // sees the exact snapshot the sequential replay would, and one
    // snapshot means the whole group can be scored in parallel.
    std::int64_t bound = horizon_ > 0
                             ? t + horizon_
                             : std::numeric_limits<std::int64_t>::min();
    if (const auto fire = joiner_.next_timer(); fire.has_value()) {
      bound = std::min(bound, *fire);
    }
    std::size_t end = begin + 1;
    while (end < order.size() && sessions[order[end]].t < bound) ++end;

    const std::span<const std::size_t> group(order.data() + begin,
                                             end - begin);
    const std::vector<double> scores = score_group(sessions, group, pool);
    std::size_t prefetched = 0;
    {
      // decision_joiner stage: thresholding + pending bookkeeping + the
      // joiner context feed for one snapshot group.
      obs::ScopedTimer stage_timer(obs::sample_tick() ? obs_decision_ns_
                                                      : nullptr);
      for (std::size_t i = 0; i < group.size(); ++i) {
        const SessionStart& s = sessions[group[i]];
        const bool prefetch = scores[i] >= threshold_;
        prefetched += prefetch ? 1 : 0;
        decisions[group[i]] = prefetch;
        pending_[s.session_id] = {scores[i], prefetch};
        joiner_.on_context(s.session_id, s.user_id, s.t, s.context);
      }
    }
    obs_prefetches_->inc(prefetched);
    obs_skips_->inc(group.size() - prefetched);
    begin = end;
  }
  return decisions;
}

void PrecomputeService::on_access(std::uint64_t session_id, std::int64_t t) {
  MutexLock guard(mutex_);
  joiner_.on_access(session_id, t);
}

void PrecomputeService::advance_to(std::int64_t t) {
  MutexLock guard(mutex_);
  {
    SerialSection serial(policy_->serial_token());
    policy_->begin_batch();
  }
  joiner_.advance_to(t);
}

void PrecomputeService::flush() {
  MutexLock guard(mutex_);
  {
    SerialSection serial(policy_->serial_token());
    policy_->begin_batch();
  }
  joiner_.flush();
}

void PrecomputeService::set_completion_listener(
    std::function<void(const JoinedSession&)> listener) {
  MutexLock guard(mutex_);
  completion_listener_ = std::move(listener);
}

}  // namespace pp::serving
