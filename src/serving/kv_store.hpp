// In-memory key-value store standing in for the "real-time data store
// similar to Redis" of §9. Fully instrumented: every get/put is counted
// with its byte volume, because the paper's 10x serving-cost claim is
// about exactly these numbers (1 hidden-state lookup vs ~20 aggregation
// lookups backed by thousands of live keys per user).
//
// `KvStore` is the interface the serving tier programs against
// (HiddenStateStore, AggregationService). `LocalKvStore` is the original
// single-map implementation — one mutex, fine for a single-threaded
// replay. `ShardedKvStore` hash-partitions the key space over N
// independent LocalKvStore shards (per-shard mutex + stats) so many
// serving workers can hit the store concurrently without serializing on
// one lock; size / value_bytes / stats merge across shards.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/mutex.hpp"

namespace pp::serving {

struct KvStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t writes = 0;
  std::size_t deletes = 0;
  std::size_t bytes_read = 0;
  std::size_t bytes_written = 0;

  KvStats& operator+=(const KvStats& other) {
    lookups += other.lookups;
    hits += other.hits;
    writes += other.writes;
    deletes += other.deletes;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    return *this;
  }
};

class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) = 0;
  virtual void put(const std::string& key,
                   std::vector<std::uint8_t> value) = 0;
  virtual bool erase(const std::string& key) = 0;
  virtual bool contains(const std::string& key) const = 0;

  virtual std::size_t size() const = 0;
  /// Total bytes of stored values (storage footprint, §9).
  virtual std::size_t value_bytes() const = 0;

  virtual KvStats stats() const = 0;
  virtual void reset_stats() = 0;
};

/// Single map + single mutex: the store every replay used before the
/// serving tier went multi-threaded, and the per-shard building block of
/// ShardedKvStore.
class LocalKvStore final : public KvStore {
 public:
  std::optional<std::vector<std::uint8_t>> get(const std::string& key)
      override;
  void put(const std::string& key, std::vector<std::uint8_t> value) override;
  bool erase(const std::string& key) override;
  bool contains(const std::string& key) const override;

  std::size_t size() const override;
  std::size_t value_bytes() const override;

  KvStats stats() const override;
  void reset_stats() override;

 private:
  mutable Mutex mutex_;
  std::unordered_map<std::string, std::vector<std::uint8_t>> map_
      PP_GUARDED_BY(mutex_);
  std::size_t value_bytes_ PP_GUARDED_BY(mutex_) = 0;
  KvStats stats_ PP_GUARDED_BY(mutex_);
};

/// N-way hash-partitioned store: each key lives in exactly one shard, so
/// operations on different shards never contend. Aggregate views (size,
/// value_bytes, stats) are merged shard sums; with concurrent writers
/// they are a consistent per-shard snapshot, and exact once writers
/// quiesce (which is when the §9 cost ledger is read).
class ShardedKvStore final : public KvStore {
 public:
  explicit ShardedKvStore(std::size_t num_shards = 16);

  std::optional<std::vector<std::uint8_t>> get(const std::string& key)
      override;
  void put(const std::string& key, std::vector<std::uint8_t> value) override;
  bool erase(const std::string& key) override;
  bool contains(const std::string& key) const override;

  std::size_t size() const override;
  std::size_t value_bytes() const override;

  KvStats stats() const override;
  void reset_stats() override;

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_index(const std::string& key) const;
  /// Per-shard stats (balance diagnostics for the bench).
  KvStats shard_stats(std::size_t shard) const;

 private:
  LocalKvStore& shard_for(const std::string& key);
  const LocalKvStore& shard_for(const std::string& key) const;

  std::vector<std::unique_ptr<LocalKvStore>> shards_;
};

}  // namespace pp::serving
