// In-memory key-value store standing in for the "real-time data store
// similar to Redis" of §9. Fully instrumented: every get/put is counted
// with its byte volume, because the paper's 10x serving-cost claim is
// about exactly these numbers (1 hidden-state lookup vs ~20 aggregation
// lookups backed by thousands of live keys per user).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pp::serving {

struct KvStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t writes = 0;
  std::size_t deletes = 0;
  std::size_t bytes_read = 0;
  std::size_t bytes_written = 0;
};

class KvStore {
 public:
  std::optional<std::vector<std::uint8_t>> get(const std::string& key);
  void put(const std::string& key, std::vector<std::uint8_t> value);
  bool erase(const std::string& key);
  bool contains(const std::string& key) const;

  std::size_t size() const;
  /// Total bytes of stored values (storage footprint, §9).
  std::size_t value_bytes() const;

  KvStats stats() const;
  void reset_stats();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<std::uint8_t>> map_;
  std::size_t value_bytes_ = 0;
  KvStats stats_;
};

}  // namespace pp::serving
