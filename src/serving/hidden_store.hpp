// Per-user hidden-state persistence (§9): "the most recent hidden state
// for each user (a 128-element floating point vector) and session
// timestamp are stored in a real-time data store similar to Redis."
//
// Supports two codecs: float32 (512 bytes at d=128, the paper's default)
// and int8 per-tensor affine quantization ("neural network quantization
// methods can also be applied to store single bytes instead of
// floating-point numbers for each dimension", §9).
#pragma once

#include <optional>

#include "serving/kv_store.hpp"
#include "train/rnn_network.hpp"

namespace pp::serving {

enum class StateCodec { kFloat32, kInt8 };

struct StoredState {
  train::InferenceState state;
  /// Timestamp t_k of the last session folded into the state (needed for
  /// the T(t - t_k) prediction input).
  std::int64_t last_update_time = 0;
  /// Number of sessions folded in (k); 0 = cold start.
  std::uint32_t updates = 0;
};

/// The int8 twin of StoredState for the quantized serving mode: the state
/// matrices stay in their stored byte form (scale + int8 vector). The wire
/// format is identical to the kInt8 codec, so put/put_q8 and get/get_q8
/// are freely interchangeable on one store.
struct QuantizedStoredState {
  train::QuantizedInferenceState state;
  std::int64_t last_update_time = 0;
  std::uint32_t updates = 0;
};

class HiddenStateStore {
 public:
  HiddenStateStore(KvStore& store, StateCodec codec = StateCodec::kFloat32)
      : store_(&store), codec_(codec) {}

  void put(std::uint64_t user_id, const StoredState& state);
  /// Returns the stored state, or std::nullopt for a cold user. `network`
  /// supplies the expected state geometry.
  std::optional<StoredState> get(std::uint64_t user_id,
                                 const train::RnnNetwork& network) const;

  /// Raw int8 read for the quantized serving path: the stored bytes and
  /// scale are handed over as-is — no f32 decode happens. Requires the
  /// kInt8 codec and a single-part (GRU) state record whose geometry
  /// matches `network` (callers memcpy hidden_size bytes straight out of
  /// the returned state, so a stale record from a differently-sized model
  /// must fail loudly here); throws std::logic_error / std::runtime_error
  /// otherwise.
  std::optional<QuantizedStoredState> get_q8(
      std::uint64_t user_id, const train::RnnNetwork& network) const;
  /// Writes an already-quantized state without an f32 encode pass (the
  /// GRU step re-quantized the updated hidden; its bytes go straight to
  /// the wire). Same format as put() under kInt8.
  void put_q8(std::uint64_t user_id, const QuantizedStoredState& state);

  /// Serialized size of one state (the per-user storage footprint).
  std::size_t encoded_bytes(const train::RnnNetwork& network) const;

  StateCodec codec() const { return codec_; }
  KvStore& store() { return *store_; }

 private:
  std::string key(std::uint64_t user_id) const;

  KvStore* store_;
  StateCodec codec_;
};

}  // namespace pp::serving
