#include "serving/online_experiment.hpp"

#include <algorithm>

namespace pp::serving {

namespace {
PolicyOutcome collect(PrecomputeService& service) {
  service.flush();
  PolicyOutcome outcome;
  const OnlineMetrics& metrics = service.metrics();
  outcome.daily_pr_auc = metrics.daily_pr_auc_series();
  outcome.predictions = metrics.predictions();
  outcome.prefetches = metrics.prefetches();
  outcome.successful_prefetches = metrics.successful_prefetches();
  outcome.accesses = metrics.accesses();
  outcome.precision = metrics.precision();
  outcome.recall = metrics.recall();
  outcome.costs = service.policy().cost_summary();
  outcome.joiner = service.joiner_stats();
  return outcome;
}
}  // namespace

OnlineExperimentResult run_online_experiment(
    const data::Dataset& cohort, std::span<const std::size_t> users,
    const models::RnnModel& rnn_model, const models::GbdtModel& gbdt_model,
    const features::FeaturePipeline& gbdt_pipeline,
    const OnlineExperimentConfig& config) {
  // Time-ordered merge of all selected users' sessions.
  struct Item {
    std::int64_t t;
    std::size_t user;
    const data::Session* session;
  };
  std::vector<Item> stream;
  for (const std::size_t u : users) {
    for (const auto& s : cohort.users[u].sessions) {
      stream.push_back({s.timestamp, u, &s});
    }
  }
  std::sort(stream.begin(), stream.end(),
            [](const Item& a, const Item& b) { return a.t < b.t; });

  LocalKvStore rnn_kv;
  HiddenStateStore hidden_store(rnn_kv, config.rnn_codec);
  RnnPolicy rnn_policy(rnn_model, hidden_store);
  PrecomputeService rnn_service(rnn_policy, config.rnn_threshold,
                                cohort.session_length, config.grace,
                                cohort.start_time);

  LocalKvStore gbdt_kv;
  AggregationService aggregation(gbdt_pipeline, gbdt_kv);
  GbdtPolicy gbdt_policy(gbdt_model, gbdt_pipeline, aggregation);
  PrecomputeService gbdt_service(gbdt_policy, config.gbdt_threshold,
                                 cohort.session_length, config.grace,
                                 cohort.start_time);

  std::uint64_t next_session_id = 1;
  for (const Item& item : stream) {
    const std::uint64_t session_id = next_session_id++;
    const std::uint64_t user_id = cohort.users[item.user].user_id;
    rnn_service.on_session_start(session_id, user_id, item.t,
                                 item.session->context);
    gbdt_service.on_session_start(session_id, user_id, item.t,
                                  item.session->context);
    if (item.session->access) {
      // The access lands midway through the session window.
      const std::int64_t access_time = item.t + cohort.session_length / 2;
      rnn_service.on_access(session_id, access_time);
      gbdt_service.on_access(session_id, access_time);
    }
  }

  OnlineExperimentResult result;
  result.sessions = stream.size();
  result.rnn = collect(rnn_service);
  result.gbdt = collect(gbdt_service);
  return result;
}

}  // namespace pp::serving
