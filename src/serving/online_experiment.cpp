#include "serving/online_experiment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/stats_bridge.hpp"
#include "storage/durable_kv_store.hpp"
#include "storage/durable_io.hpp"
#include "storage/replay_journal.hpp"

namespace pp::serving {

namespace {
PolicyOutcome collect(PrecomputeService& service) {
  service.flush();
  PolicyOutcome outcome;
  const OnlineMetrics& metrics = service.metrics();
  outcome.daily_pr_auc = metrics.daily_pr_auc_series();
  outcome.predictions = metrics.predictions();
  outcome.prefetches = metrics.prefetches();
  outcome.successful_prefetches = metrics.successful_prefetches();
  outcome.accesses = metrics.accesses();
  outcome.precision = metrics.precision();
  outcome.recall = metrics.recall();
  outcome.costs = service.policy().cost_summary();
  outcome.joiner = service.joiner_stats();
  return outcome;
}
}  // namespace

OnlineExperimentResult run_online_experiment(
    const data::Dataset& cohort, std::span<const std::size_t> users,
    const models::RnnModel& rnn_model, const models::GbdtModel& gbdt_model,
    const features::FeaturePipeline& gbdt_pipeline,
    const OnlineExperimentConfig& config) {
  // Time-ordered merge of all selected users' sessions.
  struct Item {
    std::int64_t t;
    std::size_t user;
    const data::Session* session;
  };
  std::vector<Item> stream;
  for (const std::size_t u : users) {
    for (const auto& s : cohort.users[u].sessions) {
      stream.push_back({s.timestamp, u, &s});
    }
  }
  std::sort(stream.begin(), stream.end(),
            [](const Item& a, const Item& b) { return a.t < b.t; });

  LocalKvStore rnn_kv;
  HiddenStateStore hidden_store(rnn_kv, config.rnn_codec);
  RnnPolicy rnn_policy(rnn_model, hidden_store);
  PrecomputeService rnn_service(rnn_policy, config.rnn_threshold,
                                cohort.session_length, config.grace,
                                cohort.start_time);

  LocalKvStore gbdt_kv;
  AggregationService aggregation(gbdt_pipeline, gbdt_kv);
  GbdtPolicy gbdt_policy(gbdt_model, gbdt_pipeline, aggregation);
  PrecomputeService gbdt_service(gbdt_policy, config.gbdt_threshold,
                                 cohort.session_length, config.grace,
                                 cohort.start_time);

  // Third arm: the same trained weights, but served through a registry and
  // continually refit from the arm's own joiner feed. The learner only
  // ever sees what production would see — joined (context, access) records
  // delayed by window + grace — and every publish passes the prequential
  // gate inside run_update_round.
  std::unique_ptr<KvStore> online_kv;
  std::unique_ptr<HiddenStateStore> online_store;
  std::unique_ptr<online::ModelRegistry> registry;
  std::unique_ptr<online::OnlineLearner> learner;
  std::unique_ptr<storage::ReplayJournal> journal;
  std::unique_ptr<online::OnlineUpdateDaemon> daemon;
  std::unique_ptr<RnnPolicy> online_policy;
  std::unique_ptr<PrecomputeService> online_service;
  bool resumed_from_checkpoint = false;
  std::size_t replayed_journal_sessions = 0;
  std::int64_t next_update = 0;
  if (config.online_rnn_arm) {
    if (config.online_update_period <= 0) {
      throw std::invalid_argument(
          "run_online_experiment: online_update_period must be positive "
          "(the update schedule advances by it)");
    }
    if (config.durable_state_dir.empty()) {
      online_kv = std::make_unique<LocalKvStore>();
    } else {
      // Durable tier: hidden states land in the crash-safe segment-log
      // store instead of the in-memory map. The stored bytes are the same
      // codec payloads either way, so the arm's behaviour is identical —
      // until the process is killed, at which point only this variant can
      // reopen and continue.
      storage::ensure_dir(config.durable_state_dir);
      storage::DurableKvConfig kv_config;
      kv_config.dir = config.durable_state_dir + "/kv";
      online_kv = std::make_unique<storage::DurableKvStore>(kv_config);
    }
    online_store =
        std::make_unique<HiddenStateStore>(*online_kv, config.rnn_codec);
    // clone() never carries int8 replicas, so the replica policy must be
    // explicit: an int8 gate (or an int8-serving source model) needs
    // every published version rebuilt before the swap.
    registry = std::make_unique<online::ModelRegistry>(
        std::shared_ptr<models::RnnModel>(rnn_model.clone()),
        config.learner.gate_int8 || rnn_model.quantized_serving());
    learner = std::make_unique<online::OnlineLearner>(*registry, cohort,
                                                      config.learner);
    if (!config.learner_checkpoint.empty()) {
      // Resume the incremental-training state (shadow weights + Adam
      // moments + step count) exactly where a killed process left it.
      resumed_from_checkpoint =
          learner->load_checkpoint(config.learner_checkpoint);
    }
    if (!config.durable_state_dir.empty()) {
      // Rebuild the replay buffer by re-feeding the journaled stream
      // through observe(): add() is deterministic in (config, stream), so
      // the buffer — retained sessions, eviction counters, reservoir RNG
      // cursor — comes back bit-identical to the pre-kill state.
      storage::ReplayJournalConfig journal_config;
      journal_config.dir = config.durable_state_dir + "/replay";
      online::OnlineLearner* feed = learner.get();
      journal = std::make_unique<storage::ReplayJournal>(
          journal_config,
          [feed](std::uint64_t user_id, std::int64_t session_start,
                 const std::array<std::uint32_t, data::kMaxContextFields>&
                     context,
                 bool access) {
            JoinedSession joined;
            joined.user_id = user_id;
            joined.session_start = session_start;
            joined.context = context;
            joined.access = access;
            feed->observe(joined);
          });
      replayed_journal_sessions = journal->stats().replayed;
    }
    if (config.use_update_daemon) {
      online::OnlineUpdateDaemonConfig daemon_config;
      // Replays are event-time deterministic: the auto triggers are
      // parked (no new-session threshold can fire) and every round is an
      // explicit drive_round() at the event-time schedule below — still
      // executed on the daemon thread, never on this replay thread.
      daemon_config.min_new_sessions = std::numeric_limits<std::size_t>::max();
      daemon_config.min_round_interval = std::chrono::milliseconds(0);
      if (!config.learner_checkpoint.empty()) {
        daemon_config.checkpoint_every_rounds = 1;
        daemon_config.checkpoint_path = config.learner_checkpoint;
      }
      daemon = std::make_unique<online::OnlineUpdateDaemon>(*learner,
                                                            daemon_config);
      daemon->start();
    }
    online_policy = std::make_unique<RnnPolicy>(*registry, *online_store);
    online_service = std::make_unique<PrecomputeService>(
        *online_policy, config.rnn_threshold, cohort.session_length,
        config.grace, cohort.start_time);
    online::OnlineLearner* feed = learner.get();
    storage::ReplayJournal* journal_ptr = journal.get();
    online_service->set_completion_listener(
        [feed, journal_ptr](const JoinedSession& joined) {
          if (journal_ptr != nullptr) {
            // Journal first: a kill between the two re-observes the
            // session on reopen instead of losing it.
            journal_ptr->append(joined.user_id, joined.session_start,
                                joined.context, joined.access);
          }
          feed->observe(joined);
        });
    if (!stream.empty()) {
      next_update = stream.front().t + config.online_update_period;
    }
  }

  std::uint64_t next_session_id = 1;
  for (const Item& item : stream) {
    if (online_service != nullptr && item.t >= next_update) {
      if (daemon != nullptr) {
        daemon->drive_round();
      } else {
        const online::OnlineUpdateReport report =
            learner->run_update_round();
        if (report.ran && !config.learner_checkpoint.empty()) {
          learner->save_checkpoint(config.learner_checkpoint);
        }
      }
      while (next_update <= item.t) next_update += config.online_update_period;
    }
    const std::uint64_t session_id = next_session_id++;
    const std::uint64_t user_id = cohort.users[item.user].user_id;
    rnn_service.on_session_start(session_id, user_id, item.t,
                                 item.session->context);
    gbdt_service.on_session_start(session_id, user_id, item.t,
                                  item.session->context);
    if (online_service != nullptr) {
      online_service->on_session_start(session_id, user_id, item.t,
                                       item.session->context);
    }
    if (item.session->access) {
      // The access lands midway through the session window.
      const std::int64_t access_time = item.t + cohort.session_length / 2;
      rnn_service.on_access(session_id, access_time);
      gbdt_service.on_access(session_id, access_time);
      if (online_service != nullptr) {
        online_service->on_access(session_id, access_time);
      }
    }
  }

  OnlineExperimentResult result;
  result.sessions = stream.size();
  result.rnn = collect(rnn_service);
  result.gbdt = collect(gbdt_service);
  if (online_service != nullptr) {
    if (daemon != nullptr) {
      daemon->stop();  // join the update thread before reading ledgers
      result.daemon = daemon->stats();
    }
    if (!config.learner_checkpoint.empty()) {
      learner->save_checkpoint(config.learner_checkpoint);
    }
    result.rnn_online = collect(*online_service);
    result.learner = learner->stats();
    result.registry = registry->stats();
    result.resumed_from_checkpoint = resumed_from_checkpoint;
    result.replayed_journal_sessions = replayed_journal_sessions;
    result.online_versions = registry->current_version();
    if (journal != nullptr) journal->flush();
    if (auto* durable = dynamic_cast<storage::DurableKvStore*>(online_kv.get());
        durable != nullptr) {
      durable->flush();
    }
  }

  // End-of-run export: bridge every arm's *Stats into the registry under
  // arm= labels, then render one snapshot both ways. The hot-path
  // histograms (stage latencies, gate counters) are already in the
  // registry — this only adds the gauge view of the legacy counters.
  auto& obs_registry = obs::MetricsRegistry::global();
  const obs::BridgeLabels rnn_labels{{"arm", "rnn"}};
  obs::bridge_kv_stats(obs_registry, rnn_kv.stats(), rnn_labels);
  obs::bridge_joiner_stats(obs_registry, result.rnn.joiner, rnn_labels);
  obs::bridge_cost_summary(obs_registry, result.rnn.costs, rnn_labels);
  const obs::BridgeLabels gbdt_labels{{"arm", "gbdt"}};
  obs::bridge_kv_stats(obs_registry, gbdt_kv.stats(), gbdt_labels);
  obs::bridge_joiner_stats(obs_registry, result.gbdt.joiner, gbdt_labels);
  obs::bridge_cost_summary(obs_registry, result.gbdt.costs, gbdt_labels);
  if (online_service != nullptr) {
    const obs::BridgeLabels online_labels{{"arm", "rnn_online"}};
    obs::bridge_kv_stats(obs_registry, online_kv->stats(), online_labels);
    obs::bridge_joiner_stats(obs_registry, result.rnn_online.joiner,
                             online_labels);
    obs::bridge_cost_summary(obs_registry, result.rnn_online.costs,
                             online_labels);
    obs::bridge_learner_stats(obs_registry, result.learner, online_labels);
    obs::bridge_replay_buffer_stats(obs_registry, learner->buffer().stats(),
                                    online_labels);
    if (daemon != nullptr) {
      obs::bridge_daemon_stats(obs_registry, result.daemon, online_labels);
    }
    if (auto* durable = dynamic_cast<storage::DurableKvStore*>(online_kv.get());
        durable != nullptr) {
      obs::bridge_durable_kv_stats(obs_registry, durable->durable_stats(),
                                   online_labels);
    }
  }
  const auto metrics = obs_registry.snapshot();
  result.metrics_json = obs::render_json(metrics);
  result.metrics_prometheus = obs::render_prometheus(metrics);
  return result;
}

}  // namespace pp::serving
