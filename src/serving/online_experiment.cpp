#include "serving/online_experiment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/stats_bridge.hpp"
#include "online/tenant.hpp"
#include "storage/durable_kv_store.hpp"
#include "storage/durable_io.hpp"

namespace pp::serving {

namespace {
PolicyOutcome collect(PrecomputeService& service) {
  service.flush();
  PolicyOutcome outcome;
  const OnlineMetrics& metrics = service.metrics();
  outcome.daily_pr_auc = metrics.daily_pr_auc_series();
  outcome.predictions = metrics.predictions();
  outcome.prefetches = metrics.prefetches();
  outcome.successful_prefetches = metrics.successful_prefetches();
  outcome.accesses = metrics.accesses();
  outcome.precision = metrics.precision();
  outcome.recall = metrics.recall();
  outcome.costs = service.policy().cost_summary();
  outcome.joiner = service.joiner_stats();
  return outcome;
}
}  // namespace

OnlineExperimentResult run_online_experiment(
    const data::Dataset& cohort, std::span<const std::size_t> users,
    const models::RnnModel& rnn_model, const models::GbdtModel& gbdt_model,
    const features::FeaturePipeline& gbdt_pipeline,
    const OnlineExperimentConfig& config) {
  // Time-ordered merge of all selected users' sessions.
  struct Item {
    std::int64_t t;
    std::size_t user;
    const data::Session* session;
  };
  std::vector<Item> stream;
  for (const std::size_t u : users) {
    for (const auto& s : cohort.users[u].sessions) {
      stream.push_back({s.timestamp, u, &s});
    }
  }
  std::sort(stream.begin(), stream.end(),
            [](const Item& a, const Item& b) { return a.t < b.t; });

  // Both RNN arms are tenants of one registry map: a TenantSpec names the
  // whole per-cohort stack and register_tenant() wires it. The frozen arm
  // serves version 1 (an exact weight clone) and captures nothing; the
  // online arm relearns from its own joiner feed.
  online::CohortRegistryMap tenants;

  online::TenantSpec frozen_spec;
  frozen_spec.id = "rnn";
  frozen_spec.model = std::shared_ptr<models::RnnModel>(rnn_model.clone());
  frozen_spec.dataset_meta = &cohort;
  frozen_spec.backend = storage::KvBackendSpec::local();
  frozen_spec.codec = config.rnn_codec;
  frozen_spec.threshold = config.rnn_threshold;
  frozen_spec.grace = config.grace;
  frozen_spec.capture = false;
  online::ServingStack& rnn_stack = tenants.register_tenant(frozen_spec);
  PrecomputeService& rnn_service = rnn_stack.service();

  // The GBDT baseline is not an RNN tenant (different policy type, no
  // registry/learner) — it stays on its own aggregation wiring.
  LocalKvStore gbdt_kv;
  AggregationService aggregation(gbdt_pipeline, gbdt_kv);
  GbdtPolicy gbdt_policy(gbdt_model, gbdt_pipeline, aggregation);
  PrecomputeService gbdt_service(gbdt_policy, config.gbdt_threshold,
                                 cohort.session_length, config.grace,
                                 cohort.start_time);

  // Third arm: the same trained weights, but served through a registry and
  // continually refit from the arm's own joiner feed. The learner only
  // ever sees what production would see — joined (context, access) records
  // delayed by window + grace — and every publish passes the prequential
  // gate inside run_update_round.
  online::ServingStack* online_stack = nullptr;
  std::int64_t next_update = 0;
  if (config.online_rnn_arm) {
    if (config.online_update_period <= 0) {
      throw std::invalid_argument(
          "run_online_experiment: online_update_period must be positive "
          "(the update schedule advances by it)");
    }
    online::TenantSpec online_spec;
    online_spec.id = "rnn_online";
    online_spec.model = std::shared_ptr<models::RnnModel>(rnn_model.clone());
    online_spec.dataset_meta = &cohort;
    online_spec.codec = config.rnn_codec;
    online_spec.threshold = config.rnn_threshold;
    online_spec.grace = config.grace;
    online_spec.cohort.learner = config.learner;
    // clone() never carries int8 replicas, so the replica policy must be
    // explicit: an int8 gate (or an int8-serving source model) needs every
    // published version rebuilt before the swap (the Cohort ctor also ORs
    // these in; stated here for the spec reader).
    online_spec.cohort.quantize_replicas =
        config.learner.gate_int8 || rnn_model.quantized_serving();
    online_spec.learner_checkpoint = config.learner_checkpoint;
    if (!config.durable_state_dir.empty()) {
      // Durable tier: hidden states land in the crash-safe segment-log
      // store, and capture goes journal-first so a kill between journal
      // append and observe re-observes the session on reopen.
      storage::ensure_dir(config.durable_state_dir);
      online_spec.backend =
          storage::KvBackendSpec::durable_dir(config.durable_state_dir +
                                              "/kv");
      online_spec.replay_journal_dir = config.durable_state_dir + "/replay";
    }
    if (config.use_update_daemon) {
      // Replays are event-time deterministic: the auto triggers are parked
      // (no new-session threshold can fire) and every round is an explicit
      // drive_round() at the event-time schedule below — still executed on
      // the daemon thread, never on this replay thread.
      online_spec.cohort.daemon.min_new_sessions =
          std::numeric_limits<std::size_t>::max();
      online_spec.cohort.daemon.min_round_interval =
          std::chrono::milliseconds(0);
      if (!config.learner_checkpoint.empty()) {
        online_spec.cohort.daemon.checkpoint_every_rounds = 1;
        online_spec.cohort.daemon.checkpoint_path = config.learner_checkpoint;
      }
      online_spec.start_daemon = true;
    }
    online_stack = &tenants.register_tenant(online_spec);
    if (!stream.empty()) {
      next_update = stream.front().t + config.online_update_period;
    }
  }
  PrecomputeService* online_service =
      online_stack != nullptr ? &online_stack->service() : nullptr;
  online::OnlineLearner* learner =
      online_stack != nullptr ? &online_stack->cohort().learner() : nullptr;

  std::uint64_t next_session_id = 1;
  for (const Item& item : stream) {
    if (online_service != nullptr && item.t >= next_update) {
      if (online_stack->daemon_running()) {
        online_stack->cohort().daemon().drive_round();
      } else {
        const online::OnlineUpdateReport report =
            learner->run_update_round();
        if (report.ran && !config.learner_checkpoint.empty()) {
          learner->save_checkpoint(config.learner_checkpoint);
        }
      }
      while (next_update <= item.t) next_update += config.online_update_period;
    }
    const std::uint64_t session_id = next_session_id++;
    const std::uint64_t user_id = cohort.users[item.user].user_id;
    rnn_service.on_session_start(session_id, user_id, item.t,
                                 item.session->context);
    gbdt_service.on_session_start(session_id, user_id, item.t,
                                  item.session->context);
    if (online_service != nullptr) {
      online_service->on_session_start(session_id, user_id, item.t,
                                       item.session->context);
    }
    if (item.session->access) {
      // The access lands midway through the session window.
      const std::int64_t access_time = item.t + cohort.session_length / 2;
      rnn_service.on_access(session_id, access_time);
      gbdt_service.on_access(session_id, access_time);
      if (online_service != nullptr) {
        online_service->on_access(session_id, access_time);
      }
    }
  }

  OnlineExperimentResult result;
  result.sessions = stream.size();
  result.rnn = collect(rnn_service);
  result.gbdt = collect(gbdt_service);
  if (online_stack != nullptr) {
    if (online_stack->daemon_running()) {
      online_stack->stop_daemon();  // join the update thread before ledgers
      result.daemon = online_stack->cohort().daemon().stats();
    }
    if (!config.learner_checkpoint.empty()) {
      learner->save_checkpoint(config.learner_checkpoint);
    }
    result.rnn_online = collect(*online_service);
    result.learner = learner->stats();
    result.registry = online_stack->cohort().registry().stats();
    result.resumed_from_checkpoint = online_stack->resumed_from_checkpoint();
    result.replayed_journal_sessions =
        online_stack->replayed_journal_sessions();
    result.online_versions =
        online_stack->cohort().registry().current_version();
    online_stack->flush_durable();
  }

  // End-of-run export: bridge every arm's *Stats into the registry under
  // arm= labels, then render one snapshot both ways. The hot-path
  // histograms (stage latencies, gate counters) are already in the
  // registry — this only adds the gauge view of the legacy counters.
  auto& obs_registry = obs::MetricsRegistry::global();
  const obs::BridgeLabels rnn_labels{{"arm", "rnn"}};
  obs::bridge_kv_stats(obs_registry, rnn_stack.kv().stats(), rnn_labels);
  obs::bridge_joiner_stats(obs_registry, result.rnn.joiner, rnn_labels);
  obs::bridge_cost_summary(obs_registry, result.rnn.costs, rnn_labels);
  const obs::BridgeLabels gbdt_labels{{"arm", "gbdt"}};
  obs::bridge_kv_stats(obs_registry, gbdt_kv.stats(), gbdt_labels);
  obs::bridge_joiner_stats(obs_registry, result.gbdt.joiner, gbdt_labels);
  obs::bridge_cost_summary(obs_registry, result.gbdt.costs, gbdt_labels);
  if (online_stack != nullptr) {
    const obs::BridgeLabels online_labels{{"arm", "rnn_online"}};
    obs::bridge_kv_stats(obs_registry, online_stack->kv().stats(),
                         online_labels);
    obs::bridge_joiner_stats(obs_registry, result.rnn_online.joiner,
                             online_labels);
    obs::bridge_cost_summary(obs_registry, result.rnn_online.costs,
                             online_labels);
    obs::bridge_learner_stats(obs_registry, result.learner, online_labels);
    obs::bridge_replay_buffer_stats(obs_registry, learner->buffer().stats(),
                                    online_labels);
    if (config.use_update_daemon) {
      obs::bridge_daemon_stats(obs_registry, result.daemon, online_labels);
    }
    if (auto* durable =
            dynamic_cast<storage::DurableKvStore*>(&online_stack->kv());
        durable != nullptr) {
      obs::bridge_durable_kv_stats(obs_registry, durable->durable_stats(),
                                   online_labels);
    }
  }
  const auto metrics = obs_registry.snapshot();
  result.metrics_json = obs::render_json(metrics);
  result.metrics_prometheus = obs::render_prometheus(metrics);
  return result;
}

}  // namespace pp::serving
