#include "serving/aggregation_service.hpp"

#include <cstring>

namespace pp::serving {

namespace {
std::vector<std::uint8_t> counter_bytes(std::uint32_t sessions,
                                        std::uint32_t accesses) {
  std::vector<std::uint8_t> bytes(8);
  std::memcpy(bytes.data(), &sessions, 4);
  std::memcpy(bytes.data() + 4, &accesses, 4);
  return bytes;
}
}  // namespace

AggregationService::AggregationService(
    const features::FeaturePipeline& pipeline, KvStore& store)
    : pipeline_(&pipeline), store_(&store) {}

features::UserAggregator& AggregationService::aggregator_for(
    std::uint64_t user_id) {
  auto it = aggregators_.find(user_id);
  if (it == aggregators_.end()) {
    it = aggregators_
             .emplace(user_id, std::make_unique<features::UserAggregator>(
                                   &pipeline_->schema(), pipeline_->windows()))
             .first;
  }
  return *it->second;
}

void AggregationService::serve_features(
    std::uint64_t user_id, std::int64_t t,
    std::span<const std::uint32_t> context, features::SparseRow& out) {
  features::UserAggregator& agg = aggregator_for(user_id);
  agg.query(t, context, snapshot_);
  // Mirror the KV traffic: one lookup per (window x subset) counter cell
  // plus one per last-session/last-access key pair (stored together).
  const std::string prefix = "agg:" + std::to_string(user_id) + ":";
  for (std::size_t w = 0; w < agg.num_windows(); ++w) {
    for (std::size_t s = 0; s < agg.num_subsets(); ++s) {
      (void)store_->get(prefix + std::to_string(w) + ":" +
                        std::to_string(s));
    }
  }
  for (std::size_t s = 0; s < agg.num_subsets(); ++s) {
    (void)store_->get(prefix + "last:" + std::to_string(s));
  }
  out.clear();
  pipeline_->encode_static(t, context, out);
  pipeline_->encode_history(t, snapshot_, out);
}

void AggregationService::apply_session(std::uint64_t user_id,
                                       const data::Session& session) {
  features::UserAggregator& agg = aggregator_for(user_id);
  agg.observe(session);
  // Mirror counter writes: every (window x subset) cell this session
  // touches, plus the last-seen keys.
  const std::string prefix = "agg:" + std::to_string(user_id) + ":";
  for (std::size_t w = 0; w < agg.num_windows(); ++w) {
    for (std::size_t s = 0; s < agg.num_subsets(); ++s) {
      store_->put(prefix + std::to_string(w) + ":" + std::to_string(s) + ":" +
                      std::to_string(session.context[0]),
                  counter_bytes(1, session.access));
    }
  }
  for (std::size_t s = 0; s < agg.num_subsets(); ++s) {
    store_->put(prefix + "last:" + std::to_string(s),
                counter_bytes(static_cast<std::uint32_t>(session.timestamp &
                                                         0xffffffffu),
                              session.access));
  }
}

std::size_t AggregationService::live_keys(std::uint64_t user_id) const {
  const auto it = aggregators_.find(user_id);
  return it == aggregators_.end() ? 0 : it->second->live_key_count();
}

std::size_t AggregationService::total_live_keys() const {
  std::size_t total = 0;
  for (const auto& [id, agg] : aggregators_) total += agg->live_key_count();
  return total;
}

std::size_t AggregationService::storage_bytes() const {
  return total_live_keys() * 16;
}

std::size_t AggregationService::lookups_per_prediction() const {
  const std::size_t subsets = std::size_t{1} << pipeline_->schema().size();
  return pipeline_->windows().size() * subsets + subsets;
}

KvStats AggregationService::kv_stats() const { return store_->stats(); }

}  // namespace pp::serving
