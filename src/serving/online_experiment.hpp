// Online A/B replay (§9 / Figure 7): a cohort of users with empty serving
// state is replayed day by day through two production pipelines — the RNN
// policy (hidden-state store) and the GBDT policy (aggregation service).
// Both see the same session stream; per-day PR-AUC traces the cold-start
// warmup, and the prefetch ledgers give the "successful prefetch" /
// serving-cost comparison.
#pragma once

#include <span>

#include "online/online_learner.hpp"
#include "online/update_daemon.hpp"
#include "serving/precompute_service.hpp"

namespace pp::serving {

struct PolicyOutcome {
  std::vector<double> daily_pr_auc;
  std::size_t predictions = 0;
  std::size_t prefetches = 0;
  std::size_t successful_prefetches = 0;
  std::size_t accesses = 0;
  double precision = 0;
  double recall = 0;
  ServingCostSummary costs;
  JoinerStats joiner;
};

struct OnlineExperimentResult {
  PolicyOutcome rnn;
  PolicyOutcome gbdt;
  /// The continual-learning arm (populated when online_rnn_arm is set):
  /// same initial weights as `rnn`, but served through a ModelRegistry and
  /// incrementally refit from its own joiner feed.
  PolicyOutcome rnn_online;
  online::OnlineLearnerStats learner;
  online::ModelRegistryStats registry;
  /// Round-origin ledger of the background updater (populated when
  /// use_update_daemon is set): daemon.rounds_driven == learner.rounds
  /// proves no update round ever ran on the replay (serving) thread.
  online::OnlineUpdateDaemonStats daemon;
  /// Whether learner_checkpoint existed and was restored before replay.
  bool resumed_from_checkpoint = false;
  /// Sessions replayed out of the durable journal into the learner's
  /// buffer before the stream started (durable_state_dir only).
  std::size_t replayed_journal_sessions = 0;
  /// Final published version of the online arm (1 = never republished).
  std::uint64_t online_versions = 0;
  std::size_t sessions = 0;
  /// End-of-run snapshot of the process metrics registry (per-stage
  /// latency histograms, gate counters, bridged *Stats gauges labeled
  /// arm=rnn|gbdt|rnn_online), rendered both ways. The same snapshot
  /// feeds both renders, so the two documents always agree.
  std::string metrics_json;
  std::string metrics_prometheus;
};

struct OnlineExperimentConfig {
  double rnn_threshold = 0.5;
  double gbdt_threshold = 0.5;
  /// Stream grace period ε added to the session-length timer.
  std::int64_t grace = 60;
  StateCodec rnn_codec = StateCodec::kFloat32;
  /// Enables the third (online-RNN) arm: frozen vs continually-learned
  /// replay over the same stream (Figure 7 bent upward).
  bool online_rnn_arm = false;
  online::OnlineLearnerConfig learner;
  /// Event-time period between OnlineLearner update rounds.
  std::int64_t online_update_period = 86400;
  /// Route every update round through an OnlineUpdateDaemon: the replay
  /// thread requests rounds at the same event-time schedule but they
  /// execute on the daemon's background thread (drive_round), exactly as
  /// the production wiring would — and the result's daemon ledger proves
  /// it. The daemon's auto triggers stay disabled so the event-time
  /// schedule remains deterministic.
  bool use_update_daemon = false;
  /// When non-empty: restore the learner from this checkpoint before the
  /// replay (if the file exists), checkpoint after every round that ran
  /// (daemon cadence under use_update_daemon, inline otherwise), and write
  /// a final checkpoint after the replay — so a killed process resumes its
  /// Adam state bit-identically.
  std::string learner_checkpoint;
  /// When non-empty (online_rnn_arm only): back the online arm's serving
  /// state with the durable tier under this directory — hidden states in a
  /// crash-safe DurableKvStore at <dir>/kv, the replay buffer's observed
  /// stream journaled at <dir>/replay and replayed into the learner on
  /// open. Together with learner_checkpoint this makes the whole arm
  /// kill-and-resume: a process killed mid-replay reopens the directory
  /// and continues with decisions, cost ledger, and learner rounds
  /// bit-identical to an uninterrupted run.
  std::string durable_state_dir;
};

/// Replays the selected users' sessions (time-ordered across users)
/// through both serving stacks. Models must already be trained.
OnlineExperimentResult run_online_experiment(
    const data::Dataset& cohort, std::span<const std::size_t> users,
    const models::RnnModel& rnn_model, const models::GbdtModel& gbdt_model,
    const features::FeaturePipeline& gbdt_pipeline,
    const OnlineExperimentConfig& config);

}  // namespace pp::serving
