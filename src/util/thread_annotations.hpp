// Clang Thread Safety Analysis attribute macros — the compile-time half of
// the concurrency-correctness story (the TSan lane is the runtime half).
// Under Clang every PP_GUARDED_BY / PP_REQUIRES declaration below becomes a
// build error when violated (`-Werror=thread-safety` in the clang CI lane);
// under GCC and other compilers the macros expand to nothing, so the
// annotated tree still builds everywhere.
//
// The vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//  * PP_CAPABILITY marks a class as a lockable capability (pp::Mutex).
//  * PP_SCOPED_CAPABILITY marks an RAII holder (pp::MutexLock).
//  * PP_GUARDED_BY(mu) on a member: reads and writes require holding `mu`.
//  * PP_REQUIRES(mu) on a function: callers must already hold `mu`.
//  * PP_EXCLUDES(mu) on a function: callers must NOT hold `mu`
//    (self-deadlock documentation; the analysis checks it where it can).
//  * PP_ACQUIRE / PP_RELEASE / PP_TRY_ACQUIRE on lock primitives.
//  * PP_RETURN_CAPABILITY(mu) on an accessor that hands out a reference to
//    the capability `mu` (the RnnPolicy striped-lock accessor).
//  * PP_ASSERT_CAPABILITY on a runtime assertion that a lock is held —
//    the escape valve for call graphs the intra-procedural analysis cannot
//    follow (e.g. a std::function callback invoked under a lock).
//
// Only attach these through the pp::Mutex / pp::MutexLock / pp::CondVar
// wrappers in util/mutex.hpp — raw std::mutex outside src/util/ is rejected
// by the source lint (ci/lint.sh), so annotated code cannot silently bypass
// the analysis.
#pragma once

#if defined(__clang__)
#define PP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PP_THREAD_ANNOTATION(x)  // no-op off-Clang
#endif

#define PP_CAPABILITY(x) PP_THREAD_ANNOTATION(capability(x))
#define PP_SCOPED_CAPABILITY PP_THREAD_ANNOTATION(scoped_lockable)

#define PP_GUARDED_BY(x) PP_THREAD_ANNOTATION(guarded_by(x))
#define PP_PT_GUARDED_BY(x) PP_THREAD_ANNOTATION(pt_guarded_by(x))

#define PP_ACQUIRE(...) \
  PP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PP_RELEASE(...) \
  PP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PP_TRY_ACQUIRE(...) \
  PP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define PP_REQUIRES(...) \
  PP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PP_EXCLUDES(...) PP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define PP_RETURN_CAPABILITY(x) PP_THREAD_ANNOTATION(lock_returned(x))
#define PP_ASSERT_CAPABILITY(x) PP_THREAD_ANNOTATION(assert_capability(x))

#define PP_ACQUIRED_BEFORE(...) \
  PP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PP_ACQUIRED_AFTER(...) \
  PP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Deliberately not defined: NO_THREAD_SAFETY_ANALYSIS. The clang lane runs
// with zero suppressions; a call graph the analysis cannot follow gets a
// PP_ASSERT_CAPABILITY at the boundary (a checkable claim), not a blanket
// opt-out.
