// Fixed-size thread pool used for per-user gradient evaluation (the paper's
// "custom parallelism", §7.1) and for feature-parallel GBDT split search.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <vector>

#include "util/mutex.hpp"
#include "util/stopwatch.hpp"
#include "util/thread.hpp"

namespace pp::obs {
class Gauge;
class LatencyHistogram;
}  // namespace pp::obs

namespace pp {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (defaults to hardware
  /// concurrency, at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future observes its completion (and
  /// propagates exceptions).
  template <typename F>
  std::future<void> submit(F&& task) {
    auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(task));
    std::future<void> result = packaged->get_future();
    push_task([packaged] { (*packaged)(); });
    return result;
  }

  /// Runs fn(i) for i in [0, count), blocking until all are done. Work is
  /// dealt in contiguous chunks to limit scheduling overhead.
  ///
  /// Re-entrancy: when called from one of this pool's own workers (e.g. a
  /// threaded GEMM inside a sharded serving worker) the chunks run inline
  /// on the caller (caller-runs). Submitting them would deadlock — the
  /// worker would block on futures that only the occupied workers could
  /// ever schedule.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const { return current_pool_ == this; }

  /// Waits for every future, then rethrows the first captured error.
  /// Bailing on the first get() would destroy locals the still-running
  /// tasks reference — always drain before unwinding.
  static void wait_all(std::vector<std::future<void>>& futures);

 private:
  /// One queued unit of work plus its wait-time clock (armed only when obs
  /// timing is on: the stopwatch starts at enqueue, the worker records the
  /// elapsed wait when it dequeues).
  struct Task {
    std::function<void()> fn;
    Stopwatch waited{Stopwatch::Unstarted{}};
    bool timed = false;
  };

  /// Non-template enqueue path (defined in the .cpp so the header needs no
  /// obs dependency): queue push under the mutex + depth/wait bookkeeping.
  void push_task(std::function<void()> fn);

  void worker_loop();

  static thread_local const ThreadPool* current_pool_;

  std::vector<Thread> workers_;
  std::queue<Task> tasks_ PP_GUARDED_BY(mutex_);
  Mutex mutex_;
  CondVar cv_;
  bool stop_ PP_GUARDED_BY(mutex_) = false;
  // Process-global instruments (shared by all pools), resolved once in the
  // constructor. Observe-only: queue depth + how long tasks sat queued.
  obs::Gauge* obs_queue_depth_ = nullptr;
  obs::LatencyHistogram* obs_task_wait_ = nullptr;
};

}  // namespace pp
