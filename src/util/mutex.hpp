// Annotated synchronization wrappers — the ONLY mutex/condvar entry points
// for code outside src/util/ (ci/lint.sh rejects raw std::mutex /
// std::condition_variable / std::thread elsewhere, so every lock in the
// serving and online tiers is visible to Clang Thread Safety Analysis).
//
// pp::Mutex      — std::mutex as a PP_CAPABILITY; lock/unlock annotated.
// pp::MutexLock  — RAII holder (PP_SCOPED_CAPABILITY), relockable: the
//                  update daemon's run-a-round-outside-the-lock pattern is
//                  lock.unlock() ... lock.lock() on the scoped object, which
//                  the analysis tracks precisely.
// pp::CondVar    — condition variable over pp::Mutex. Waits take the Mutex
//                  itself (PP_REQUIRES(mu)) and are implemented by adopting
//                  the native handle for the duration of the wait; the
//                  caller's MutexLock stays the owner-of-record. No
//                  predicate overloads on purpose: a predicate lambda is a
//                  separate function to the analysis and would read guarded
//                  state with no visible lock held — write the wait loop in
//                  the caller, where the capability is provably held.
// pp::SerialToken / pp::SerialSection — a capability with no runtime state,
//                  naming an externally-enforced serialization contract
//                  (e.g. "begin_batch() runs under the owning service's
//                  mutex") so the analysis checks what used to be a comment.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace pp {

class CondVar;

class PP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PP_ACQUIRE() { mu_.lock(); }
  void unlock() PP_RELEASE() { mu_.unlock(); }
  bool try_lock() PP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Declares (to the analysis) that the calling thread holds this mutex.
  /// Compiles to nothing at runtime. Use ONLY where the lock is genuinely
  /// held but the acquisition is invisible to the intra-procedural
  /// analysis — e.g. a callback lambda invoked by code that holds the lock.
  /// Each use is a reviewable claim; there are very few.
  void assert_held() const PP_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;  // wait() adopts the native handle
  std::mutex mu_;
};

/// RAII lock for pp::Mutex, relockable (see the header comment). This is
/// the clang-doc MutexLocker shape: the constructor/destructor and the
/// explicit lock()/unlock() keep the analysis's view of the held set exact.
class PP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PP_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() PP_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. to run a training round outside the daemon
  /// mutex). The destructor then does nothing unless lock() re-acquires.
  void unlock() PP_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() PP_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable over pp::Mutex. Every wait requires the mutex held
/// (via a MutexLock in the caller); the wait itself temporarily adopts the
/// native handle so std::condition_variable can release/reacquire it, then
/// abandons ownership back to the caller's MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) PP_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      PP_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      PP_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability with no runtime state. It names a serialization contract
/// that is enforced by something the analysis cannot see from the callee —
/// e.g. PrecomputePolicy::begin_batch() runs only under the owning
/// service's mutex. The callee declares PP_REQUIRES(token); the enforcing
/// caller (or a single-threaded test driver) claims it with a
/// SerialSection. acquire()/release() compile to nothing: the token costs
/// zero bytes and zero cycles, it exists purely for the analysis.
class PP_CAPABILITY("serial") SerialToken {
 public:
  SerialToken() = default;
  SerialToken(const SerialToken&) = delete;
  SerialToken& operator=(const SerialToken&) = delete;

  void acquire() const PP_ACQUIRE() {}
  void release() const PP_RELEASE() {}
  /// See Mutex::assert_held().
  void assert_held() const PP_ASSERT_CAPABILITY(this) {}
};

/// RAII claim of a SerialToken for the enclosing scope.
class PP_SCOPED_CAPABILITY SerialSection {
 public:
  explicit SerialSection(const SerialToken& token) PP_ACQUIRE(token)
      : token_(token) {
    token_.acquire();
  }
  ~SerialSection() PP_RELEASE() { token_.release(); }
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;

 private:
  const SerialToken& token_;
};

}  // namespace pp
