// Thin std::thread wrapper. The source lint (ci/lint.sh) rejects raw
// std::thread outside src/util/ so thread creation stays auditable in one
// place alongside the annotated mutex wrappers; this type is deliberately
// the same move-only join/joinable surface as std::thread, nothing more.
#pragma once

#include <thread>
#include <utility>

namespace pp {

class Thread {
 public:
  Thread() noexcept = default;
  template <typename F, typename... Args>
  explicit Thread(F&& f, Args&&... args)
      : t_(std::forward<F>(f), std::forward<Args>(args)...) {}

  Thread(Thread&&) noexcept = default;
  Thread& operator=(Thread&&) noexcept = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  bool joinable() const noexcept { return t_.joinable(); }
  void join() { t_.join(); }
  void detach() { t_.detach(); }

  static unsigned hardware_concurrency() noexcept {
    return std::thread::hardware_concurrency();
  }

 private:
  std::thread t_;
};

}  // namespace pp
