#include "util/serialize.hpp"

#include <cstdio>
#include <memory>

namespace pp {

void BinaryWriter::save_file(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  if (!bytes_.empty() &&
      std::fwrite(bytes_.data(), 1, bytes_.size(), f.get()) != bytes_.size()) {
    throw std::runtime_error("short write: " + path);
  }
}

BinaryReader BinaryReader::from_file(const std::string& path) {
  BinaryReader reader({});
  if (!try_from_file(path, &reader)) {
    throw std::runtime_error("cannot open for read: " + path);
  }
  return reader;
}

bool BinaryReader::try_from_file(const std::string& path,
                                 BinaryReader* out) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return false;
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size < 0) return false;  // non-seekable (e.g. FIFO): treat as absent
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 && std::fread(bytes.data(), 1, bytes.size(), f.get()) !=
                      bytes.size()) {
    throw std::runtime_error("short read: " + path);
  }
  *out = BinaryReader(std::move(bytes));
  return true;
}

}  // namespace pp
