#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pp {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

Table& Table::cell_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return cell(std::string(buf));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      out << v << std::string(widths[c] - v.size(), ' ');
      out << (c + 1 == widths.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::printf("%s\n", to_string().c_str());
  std::fflush(stdout);
}

}  // namespace pp
