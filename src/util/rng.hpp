// Deterministic, fast pseudo-random number generation for data synthesis,
// weight initialization, and dropout. Every stochastic component in the
// library takes an explicit Rng (or a seed) so experiments are reproducible
// bit-for-bit across runs.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

namespace pp {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Passes BigCrush; recommended seeding procedure for xoshiro.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator (Blackman & Vigna). Small, fast, and of far higher
/// quality than std::minstd; we avoid std::mt19937 because its 2.5 KB state
/// is wasteful when we keep one generator per simulated user.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method: unbiased and division-free
    // in the common case.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / rate;
  }

  /// Poisson sample. Uses inversion for small means and a normal
  /// approximation (rounded, clamped at 0) for large ones, which is
  /// adequate for workload synthesis.
  std::int64_t poisson(double mean) noexcept {
    if (mean <= 0) return 0;
    if (mean < 30.0) {
      const double l = std::exp(-mean);
      std::int64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > l);
      return k - 1;
    }
    const double x = normal(mean, std::sqrt(mean));
    return x < 0 ? 0 : static_cast<std::int64_t>(std::llround(x));
  }

  /// Sample an index from unnormalized non-negative weights.
  std::size_t categorical(std::span<const double> weights) noexcept {
    double total = 0;
    for (double w : weights) total += w;
    double x = uniform() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Derive an independent generator (e.g. one per user) from this one.
  Rng fork() noexcept { return Rng((*this)()); }

  /// Raw generator state (xoshiro words + the Box-Muller cache) for
  /// checkpointing: a restored generator resumes its stream exactly where
  /// the snapshot stood, which bit-identical kill/resume paths require —
  /// reseeding only rewinds to the start of the stream.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached = 0;
    bool has_cached = false;
  };
  State state() const noexcept { return {state_, cached_, has_cached_}; }
  void restore(const State& s) noexcept {
    state_ = s.words;
    cached_ = s.cached;
    has_cached_ = s.has_cached;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0;
  bool has_cached_ = false;
};

}  // namespace pp
