// Console table / CSV emitter used by every bench harness to print the rows
// of the paper's tables and the series of its figures in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pp {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with a fixed precision so that bench output lines up with the paper's
/// tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent add_* calls append cells to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(std::size_t value) {
    return cell(static_cast<long long>(value));
  }
  /// Percent with a sign, e.g. +7.81%.
  Table& cell_percent(double fraction, int precision = 2);

  /// Renders with aligned columns and a separator under the header.
  std::string to_string() const;
  /// Comma-separated values (no alignment padding).
  std::string to_csv() const;
  /// Prints to_string() to stdout with an optional caption line.
  void print(const std::string& caption = "") const;

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with Table).
std::string format_double(double value, int precision);

}  // namespace pp
