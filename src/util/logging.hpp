// Minimal leveled logger. Benches and examples print their results through
// the Table facility; the logger is for progress/diagnostic lines only.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace pp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, std::string_view message);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace pp

#define PP_LOG_DEBUG ::pp::detail::LogMessage(::pp::LogLevel::kDebug)
#define PP_LOG_INFO ::pp::detail::LogMessage(::pp::LogLevel::kInfo)
#define PP_LOG_WARN ::pp::detail::LogMessage(::pp::LogLevel::kWarn)
#define PP_LOG_ERROR ::pp::detail::LogMessage(::pp::LogLevel::kError)
