// Minimal leveled logger. Benches and examples print their results through
// the Table facility; the logger is for progress/diagnostic lines only.
//
// The PP_LOG_* macros check the level BEFORE constructing the message, so a
// suppressed PP_LOG_DEBUG in a hot path costs one atomic load — operands are
// never formatted (and their side effects never run) unless the line is live.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace pp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when a message at `level` would be emitted. One relaxed atomic load.
inline bool log_enabled(LogLevel level) { return level >= log_level(); }

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, std::string_view message);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the LogMessage in the enabled branch of the PP_LOG ternary so
/// both arms have type void. operator& binds looser than operator<<, so the
/// whole chained message is built first (only when the level is live).
struct Voidify {
  void operator&(const LogMessage&) const {}
};

}  // namespace detail

}  // namespace pp

// Ternary (not `if`) so the macro is a single expression: no dangling-else
// hazard, usable anywhere a statement is.
#define PP_LOG_AT_LEVEL(level_)                \
  !::pp::log_enabled(level_)                   \
      ? (void)0                                \
      : ::pp::detail::Voidify() &              \
            ::pp::detail::LogMessage(level_)

#define PP_LOG_DEBUG PP_LOG_AT_LEVEL(::pp::LogLevel::kDebug)
#define PP_LOG_INFO PP_LOG_AT_LEVEL(::pp::LogLevel::kInfo)
#define PP_LOG_WARN PP_LOG_AT_LEVEL(::pp::LogLevel::kWarn)
#define PP_LOG_ERROR PP_LOG_AT_LEVEL(::pp::LogLevel::kError)
