#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/mutex.hpp"

namespace pp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const auto now = std::chrono::system_clock::now();
  const auto secs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count();
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%lld.%03lld] %-5s %.*s\n",
               static_cast<long long>(secs / 1000),
               static_cast<long long>(secs % 1000), level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace pp
