// Wall-clock stopwatch for coarse timing of training phases and benches,
// and the single time source of the obs tier: every latency the metrics
// layer records comes from elapsed_ns()/lap_ns() (monotonic integer
// nanoseconds), never from re-derived elapsed_seconds() doubles.
#pragma once

#include <chrono>
#include <cstdint>

namespace pp {

class Stopwatch {
 public:
  /// Tag for constructing without reading the clock (epoch start). Disarmed
  /// obs timers use this so a not-sampled path costs zero clock reads; call
  /// reset() before the first real measurement.
  struct Unstarted {};

  Stopwatch() : start_(Clock::now()) {}
  explicit Stopwatch(Unstarted) : start_{} {}

  void reset() { start_ = Clock::now(); }

  /// Monotonic nanoseconds since construction/reset. The integer form the
  /// obs histograms record — no double round-trip, no precision loss at
  /// long uptimes.
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

  /// Returns elapsed_ns() and restarts the watch with a single clock read,
  /// so consecutive laps tile time exactly (no gap between the read and
  /// the reset).
  std::int64_t lap_ns() {
    const Clock::time_point now = Clock::now();
    const std::int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
            .count();
    start_ = now;
    return ns;
  }

  /// Convenience view over elapsed_ns() for multi-second phase reports —
  /// the integer clock is the single source; this only scales it.
  double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pp
