#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace pp {

thread_local const ThreadPool* ThreadPool::current_pool_ = nullptr;

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, Thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  current_pool_ = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (on_worker_thread()) {
    // Nested call from our own worker: every sibling may be equally
    // blocked inside parallel_for, so queued chunks could never be
    // scheduled. Caller-runs keeps nesting deadlock-free (and still
    // parallel at the outermost level).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(count, size() * 4);
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&, chunk_size, count] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk_size);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + chunk_size, count);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  wait_all(futures);
}

void ThreadPool::wait_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pp
