#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace pp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, size() * 4);
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&, chunk_size, count] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk_size);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + chunk_size, count);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace pp
