#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"

namespace pp {

thread_local const ThreadPool* ThreadPool::current_pool_ = nullptr;

ThreadPool::ThreadPool(std::size_t num_threads) {
  // Resolve instruments before spawning workers: the registry (a function-
  // local static) is then constructed before this pool and destroyed after
  // it, and no worker ever does a registry lookup.
  auto& registry = obs::MetricsRegistry::global();
  obs_queue_depth_ = &registry.gauge("pp_threadpool_queue_depth");
  obs_task_wait_ = &registry.histogram("pp_threadpool_task_wait_ns");
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, Thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::push_task(std::function<void()> fn) {
  Task task;
  task.fn = std::move(fn);
  if (obs::timing_enabled()) {
    task.waited.reset();
    task.timed = true;
  }
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
    obs_queue_depth_->set(static_cast<double>(tasks_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  current_pool_ = this;
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      obs_queue_depth_->set(static_cast<double>(tasks_.size()));
    }
    if (task.timed) obs_task_wait_->record(task.waited.elapsed_ns());
    task.fn();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (on_worker_thread()) {
    // Nested call from our own worker: every sibling may be equally
    // blocked inside parallel_for, so queued chunks could never be
    // scheduled. Caller-runs keeps nesting deadlock-free (and still
    // parallel at the outermost level).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(count, size() * 4);
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&, chunk_size, count] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk_size);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + chunk_size, count);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  wait_all(futures);
}

void ThreadPool::wait_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pp
