// Numerically stable scalar helpers shared across models and evaluation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace pp {

/// Logistic sigmoid, stable for large |x|.
inline double sigmoid(double x) noexcept {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// log(1 + e^x) without overflow.
inline double log1p_exp(double x) noexcept {
  return x > 0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
}

/// Binary cross-entropy from a logit: -[y*log p + (1-y)*log(1-p)] with
/// p = sigmoid(logit), computed without forming p.
inline double bce_from_logit(double logit, double label) noexcept {
  return log1p_exp(logit) - label * logit;
}

/// Binary cross-entropy from a probability, clamped away from {0,1}.
inline double bce_from_prob(double p, double label,
                            double eps = 1e-12) noexcept {
  p = std::clamp(p, eps, 1.0 - eps);
  return -(label * std::log(p) + (1.0 - label) * std::log1p(-p));
}

/// Inverse sigmoid with clamping; useful to seed logit-space biases from an
/// observed positive rate.
inline double logit(double p, double eps = 1e-12) noexcept {
  p = std::clamp(p, eps, 1.0 - eps);
  return std::log(p / (1.0 - p));
}

inline bool nearly_equal(double a, double b, double rel = 1e-9,
                         double abs = 1e-12) noexcept {
  const double diff = std::fabs(a - b);
  return diff <= abs || diff <= rel * std::max(std::fabs(a), std::fabs(b));
}

}  // namespace pp
