// Tiny binary (de)serialization helpers with explicit little-endian layout.
// Used for model weights, hidden states, and dataset round-trips.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace pp {

/// Append-only byte sink.
class BinaryWriter {
 public:
  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  void write_u32(std::uint32_t v) { write_pod(v); }
  void write_u64(std::uint64_t v) { write_pod(v); }
  void write_i64(std::int64_t v) { write_pod(v); }
  void write_f32(float v) { write_pod(v); }
  void write_f64(double v) { write_pod(v); }

  void write_string(const std::string& s) {
    write_u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_u64(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(T));
  }

  /// Appends n raw bytes with no length prefix (fixed-layout payloads
  /// whose size the reader derives from context, e.g. int8 state vectors).
  void write_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  /// Pre-sizes the buffer. Besides the allocation saving, writing a small
  /// header into a fresh writer at -O2 trips GCC 12's -Wstringop-overflow
  /// false positive on the inlined first growth; reserving sidesteps it.
  void reserve(std::size_t n) { bytes_.reserve(n); }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

  /// Writes the accumulated buffer to a file; throws on I/O failure.
  void save_file(const std::string& path) const;

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a byte buffer; throws std::runtime_error on
/// truncated input instead of reading out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  static BinaryReader from_file(const std::string& path);
  /// Single-open variant for "missing file = fresh start" callers: returns
  /// false when the file cannot be opened (no separate existence probe, no
  /// TOCTOU window); throws only on a short read.
  static bool try_from_file(const std::string& path, BinaryReader* out);

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  float read_f32() { return read_pod<float>(); }
  double read_f64() { return read_pod<double>(); }

  std::string read_string() {
    const std::uint64_t n = read_u64();
    require(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = read_u64();
    // The element count comes off the wire, so n * sizeof(T) must be
    // checked for wraparound before it reaches require(): a corrupt n near
    // 2^64 / sizeof(T) would otherwise pass the bounds check with a tiny
    // wrapped product and memcpy far out of bounds.
    if (n > std::numeric_limits<std::uint64_t>::max() / sizeof(T)) {
      throw std::runtime_error("BinaryReader: length field overflows");
    }
    require(n * sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  /// Reads n raw bytes (the write_bytes counterpart).
  void read_bytes(void* out, std::size_t n) {
    require(n);
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }

  bool at_end() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void require(std::uint64_t n) const {
    // pos_ <= bytes_.size() is a class invariant, so the subtraction
    // cannot wrap — unlike the obvious `pos_ + n > size()`, which a
    // corrupt 64-bit length field near 2^64 overflows right past the
    // check and into an out-of-bounds memcpy. Deserialization reads
    // hostile bytes by design (torn segment tails, bit-flipped records),
    // so the inequality must be overflow-proof, not just usually right.
    if (n > bytes_.size() - pos_) {
      throw std::runtime_error("BinaryReader: truncated input");
    }
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace pp
